//! Gossiping as a real V-CONGEST protocol.
//!
//! [`crate::gossip`] simulates the Appendix-A schedule centrally; this
//! module runs the same dissemination as actual message passing on the
//! simulator — each node broadcasts at most one `(message, tree)` token
//! per round, tree members relay tokens of their tree, and every node
//! collects everything it hears. The two implementations must agree on
//! completeness, and their round counts must stay within a small factor
//! (the central scheduler picks relays greedily; the protocol relays
//! FIFO), which the tests check.
//!
//! Tokens carry the tree chosen at the origin; under
//! [`TreeChoice::Weighted`] that choice comes from the shared
//! weight-proportional sampler ([`decomp_core::packing::TreeSampler`]),
//! so the protocol follows the same fractional-regime assignment as the
//! schedule-level simulation.
//!
//! Under [`Regime::Rlnc`] the protocol forwards no tree tokens at all:
//! each node runs one [`RlncDecoder`] per generation and broadcasts
//! seeded-random GF(2⁸) combinations of its received rows — coefficients
//! packed into the V-CONGEST word budget, payloads the known
//! [`symbol_word`] of each message so completion is checked by actually
//! decoding. Coefficient draws come from the simulator's per-node RNG
//! streams (the model's private coins), which is what makes the run
//! bit-identical across engines.

use crate::gossip::{GossipConfig, Regime, TreeChoice};
use crate::rlnc::{symbol_word, RlncDecoder};
use decomp_congest::{
    EngineKind, Fault, FaultPlan, Inbox, Message, Model, NodeCtx, NodeProgram, RunStats,
    ScheduledFault, SimError, Simulator,
};
use decomp_core::packing::DomTreePacking;
use decomp_graph::{Graph, GrowableGraph, NodeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

struct GossipProgram {
    /// Sorted tree ids this node belongs to.
    trees: Vec<u32>,
    /// Tokens to relay, FIFO: (msg id, tree id).
    queue: std::collections::VecDeque<(u64, u64)>,
    /// Message ids already queued/relayed here (keyed on the message
    /// alone — a message rides exactly one tree, chosen at its origin,
    /// so one relay per node covers it). Origins enter at injection
    /// time: an origin inside its own tree must not re-queue its
    /// message when the broadcast echoes back via a neighbor.
    seen: std::collections::HashSet<u64>,
    /// All message ids received.
    received: std::collections::HashSet<u64>,
    /// Initial injections for messages originating here.
    inject: std::collections::VecDeque<(u64, u64)>,
    /// Deliveries of messages this node already held
    /// ([`RunStats::wasted_bandwidth`]).
    wasted: usize,
}

impl GossipProgram {
    fn accept(&mut self, msg: u64, tree: u64) {
        if !self.received.insert(msg) {
            self.wasted += 1;
        }
        if self.trees.binary_search(&(tree as u32)).is_ok() && self.seen.insert(msg) {
            self.queue.push_back((msg, tree));
        }
    }
}

impl NodeProgram for GossipProgram {
    fn round(&mut self, ctx: &mut NodeCtx<'_>, inbox: &Inbox<'_>) {
        for (_, m) in inbox {
            self.accept(m.word(0), m.word(1));
        }
        if let Some((msg, tree)) = self.inject.pop_front() {
            self.received.insert(msg);
            ctx.broadcast(Message::from_words([msg, tree]));
            return;
        }
        if let Some((msg, tree)) = self.queue.pop_front() {
            ctx.broadcast(Message::from_words([msg, tree]));
        }
    }

    fn is_done(&self) -> bool {
        self.queue.is_empty() && self.inject.is_empty()
    }
}

/// Payload bytes each coded packet carries (one simulator word).
const RLNC_PAYLOAD: usize = 8;

/// Per-node program of the network-coded regime: one [`RlncDecoder`]
/// per generation; every round the node broadcasts a random combination
/// of one generation's received rows, drawn from the simulator's
/// per-node RNG stream.
///
/// Quiescence: a node keeps relaying a generation until every neighbor
/// has *announced* completion (broadcast it at full rank — any full-rank
/// send doubles as the announcement, and a freshly complete node
/// prioritizes announcing each generation once over random relaying).
/// `is_done` holds when every generation is complete, announced, and
/// announced-by-every-neighbor, so the run quiesces exactly when no
/// packet could still teach anyone anything.
struct RlncGossipProgram {
    /// Per-generation sizes (the last generation may be short).
    sizes: Vec<usize>,
    degree: usize,
    decoders: Vec<RlncDecoder>,
    /// Per generation: neighbors that have broadcast it at full rank.
    nbr_complete: Vec<std::collections::HashSet<NodeId>>,
    /// Per generation: whether this node has broadcast it at full rank.
    announced: Vec<bool>,
    /// Non-innovative receptions ([`RunStats::wasted_bandwidth`]).
    wasted: usize,
}

impl RlncGossipProgram {
    fn new(sizes: &[usize], degree: usize) -> Self {
        RlncGossipProgram {
            sizes: sizes.to_vec(),
            degree,
            decoders: sizes
                .iter()
                .map(|&s| RlncDecoder::new(s, RLNC_PAYLOAD))
                .collect(),
            nbr_complete: vec![Default::default(); sizes.len()],
            announced: vec![false; sizes.len()],
            wasted: 0,
        }
    }
}

impl NodeProgram for RlncGossipProgram {
    fn round(&mut self, ctx: &mut NodeCtx<'_>, inbox: &Inbox<'_>) {
        let mut pkt = Vec::new();
        for (from, m) in inbox {
            // Wire format: word 0 = generation | sender rank << 32, then
            // ⌈size/8⌉ words of LE-packed coefficient bytes, then the
            // payload word.
            let w0 = m.word(0);
            let gen = (w0 & 0xffff_ffff) as usize;
            let sender_rank = (w0 >> 32) as usize;
            let size = self.sizes[gen];
            if sender_rank == size {
                self.nbr_complete[gen].insert(from);
            }
            pkt.clear();
            pkt.resize(size + RLNC_PAYLOAD, 0);
            for (i, b) in pkt[..size].iter_mut().enumerate() {
                *b = (m.word(1 + i / 8) >> (8 * (i % 8))) as u8;
            }
            pkt[size..].copy_from_slice(&m.word(1 + size.div_ceil(8)).to_le_bytes());
            if !self.decoders[gen].receive(&pkt) {
                self.wasted += 1;
            }
        }
        // Send: first announce any freshly completed generation (lowest
        // index first), else relay a random generation some neighbor
        // still needs.
        let gen = (0..self.sizes.len())
            .find(|&g| self.decoders[g].is_complete() && !self.announced[g])
            .or_else(|| {
                let sendable: Vec<usize> = (0..self.sizes.len())
                    .filter(|&g| {
                        self.decoders[g].rank() > 0 && self.nbr_complete[g].len() < self.degree
                    })
                    .collect();
                if sendable.is_empty() {
                    None
                } else {
                    Some(sendable[ctx.rng().gen_range(0..sendable.len())])
                }
            });
        let Some(gen) = gen else { return };
        let size = self.sizes[gen];
        let mut out = vec![0u8; size + RLNC_PAYLOAD];
        self.decoders[gen].combine(ctx.rng(), &mut out);
        let rank = self.decoders[gen].rank();
        if rank == size {
            self.announced[gen] = true;
        }
        let mut words = Vec::with_capacity(2 + size.div_ceil(8));
        words.push(gen as u64 | ((rank as u64) << 32));
        for chunk in out[..size].chunks(8) {
            let mut w = 0u64;
            for (j, &b) in chunk.iter().enumerate() {
                w |= (b as u64) << (8 * j);
            }
            words.push(w);
        }
        words.push(u64::from_le_bytes(out[size..].try_into().expect("8 bytes")));
        ctx.broadcast(Message::from_words(words));
    }

    fn is_done(&self) -> bool {
        (0..self.sizes.len()).all(|g| {
            self.decoders[g].is_complete()
                && self.announced[g]
                && self.nbr_complete[g].len() == self.degree
        })
    }
}

/// Result of the message-passing gossip run.
#[derive(Clone, Debug)]
pub struct DistGossipReport {
    /// Whether every node received every message.
    pub complete: bool,
    /// Tokens assigned to each tree (mirrors
    /// [`crate::gossip::GossipReport::per_tree_load`]).
    pub per_tree_load: Vec<usize>,
    /// Full simulator statistics for the run — rounds, messages, words,
    /// and the peak-memory counters (`peak_queued_messages` /
    /// `peak_arena_words`).
    pub stats: RunStats,
}

/// Runs the Appendix-A gossip as a V-CONGEST protocol on a fresh simulator
/// over `g`: message `i` starts at `origins[i]`, gets a uniformly random
/// tree of `packing`, and is relayed FIFO by that tree's members.
///
/// # Errors
/// Propagates simulator round-limit errors.
///
/// # Panics
/// Panics if the packing is empty or `g` is disconnected.
pub fn gossip_protocol(
    g: &Graph,
    packing: &DomTreePacking,
    origins: &[NodeId],
    seed: u64,
) -> Result<DistGossipReport, SimError> {
    gossip_protocol_with(g, packing, origins, seed, GossipConfig::default())
}

/// [`gossip_protocol`] with an explicit [`GossipConfig`]: under
/// [`TreeChoice::Weighted`] the protocol tokens carry trees drawn by the
/// shared weight-proportional sampler
/// ([`decomp_core::packing::TreeSampler`]) instead of uniformly. The
/// sharing policy does not apply here — relaying is the protocol's FIFO.
///
/// # Errors
/// Propagates simulator round-limit errors.
///
/// # Panics
/// Panics if the packing is empty (or carries no weight under
/// [`TreeChoice::Weighted`]) or `g` is disconnected.
pub fn gossip_protocol_with(
    g: &Graph,
    packing: &DomTreePacking,
    origins: &[NodeId],
    seed: u64,
    config: GossipConfig,
) -> Result<DistGossipReport, SimError> {
    let mut sim = Simulator::with_seed(g, Model::VCongest, seed);
    gossip_protocol_on(&mut sim, packing, origins, seed, config)
}

/// Runs the protocol on a caller-supplied simulator (engine included —
/// the regression suites sweep `DECOMP_ENGINE` through here). `seed`
/// drives the message-to-tree assignment only; per-node RNG streams come
/// from the simulator itself.
///
/// # Errors
/// Propagates simulator round-limit errors.
///
/// # Panics
/// Panics if the packing is empty (or carries no weight under
/// [`TreeChoice::Weighted`]), the simulator graph is disconnected, or
/// the simulator is not in [`Model::VCongest`].
pub fn gossip_protocol_on(
    sim: &mut Simulator<'_>,
    packing: &DomTreePacking,
    origins: &[NodeId],
    seed: u64,
    config: GossipConfig,
) -> Result<DistGossipReport, SimError> {
    let g = sim.graph();
    assert_eq!(
        sim.model(),
        Model::VCongest,
        "gossip is a V-CONGEST protocol"
    );
    assert!(packing.num_trees() > 0, "need at least one tree");
    assert!(
        decomp_graph::traversal::is_connected(g),
        "gossip requires a connected graph"
    );
    if let Regime::Rlnc {
        generation_size, ..
    } = config.regime
    {
        return rlnc_protocol_on(sim, packing, origins, generation_size);
    }
    let n = g.n();
    let mut rng = StdRng::seed_from_u64(seed);
    // membership[v] = sorted tree ids containing v
    let mut membership: Vec<Vec<u32>> = vec![Vec::new(); n];
    for (t, tree) in packing.trees.iter().enumerate() {
        for v in tree.vertices(n) {
            membership[v].push(t as u32);
        }
    }
    let mut injections: Vec<std::collections::VecDeque<(u64, u64)>> = vec![Default::default(); n];
    let sampler = match config.tree_choice {
        TreeChoice::Uniform => None,
        TreeChoice::Weighted => Some(packing.sampler()),
    };
    let mut per_tree_load = vec![0usize; packing.num_trees()];
    for (i, &origin) in origins.iter().enumerate() {
        let tree = match &sampler {
            None => rng.gen_range(0..packing.num_trees()) as u64,
            Some(s) => s.sample(&mut rng) as u64,
        };
        per_tree_load[tree as usize] += 1;
        injections[origin].push_back((i as u64, tree));
    }
    let programs: Vec<GossipProgram> = (0..n)
        .map(|v| {
            let inject = std::mem::take(&mut injections[v]);
            GossipProgram {
                trees: membership[v].clone(),
                queue: Default::default(),
                // Injected messages are seen at injection: the origin
                // broadcasts each exactly once, so a tree-member origin
                // must not re-queue its own message when the echo
                // arrives.
                seen: inject.iter().map(|&(m, _)| m).collect(),
                received: Default::default(),
                inject,
                wasted: 0,
            }
        })
        .collect();
    let (programs, mut stats) = sim.run(programs, 64 * (n + origins.len()) + 4096)?;
    stats.wasted_bandwidth = programs.iter().map(|p| p.wasted).sum();
    let complete = programs.iter().all(|p| p.received.len() == origins.len());
    Ok(DistGossipReport {
        complete,
        per_tree_load,
        stats,
    })
}

/// The [`Regime::Rlnc`] body of [`gossip_protocol_on`]: one
/// [`RlncGossipProgram`] per node over generations of `gsize` messages.
/// Tree assignment is skipped entirely (coded packets ride no tree, so
/// `per_tree_load` is all zeros) and the regime's coefficient seed is
/// unused here — at the protocol layer the coefficient draws are the
/// nodes' private coins, i.e. the simulator's per-node RNG streams,
/// which is what keeps the run bit-identical across engines. Completion
/// is verified by *decoding*: every generation at every node must
/// reconstruct the known [`symbol_word`] payloads, not merely reach
/// full rank.
fn rlnc_protocol_on(
    sim: &mut Simulator<'_>,
    packing: &DomTreePacking,
    origins: &[NodeId],
    gsize: usize,
) -> Result<DistGossipReport, SimError> {
    let g = sim.graph();
    let n = g.n();
    let nmsg = origins.len();
    assert!(
        (1..=crate::rlnc::MAX_GENERATION).contains(&gsize),
        "generation_size must be in 1..={}",
        crate::rlnc::MAX_GENERATION
    );
    // Header word + packed coefficient bytes + payload word must fit
    // one V-CONGEST message.
    assert!(
        2 + gsize.div_ceil(8) <= decomp_congest::sim::DEFAULT_WORD_BUDGET,
        "generation_size {gsize} overflows the V-CONGEST word budget (max {})",
        8 * (decomp_congest::sim::DEFAULT_WORD_BUDGET - 2)
    );
    let gens = nmsg.div_ceil(gsize);
    let sizes: Vec<usize> = (0..gens).map(|gen| gsize.min(nmsg - gen * gsize)).collect();
    let mut programs: Vec<RlncGossipProgram> = (0..n)
        .map(|v| RlncGossipProgram::new(&sizes, g.neighbors(v).len()))
        .collect();
    // Origins hold their symbols as unit coefficient vectors.
    for (m, &origin) in origins.iter().enumerate() {
        let seeded = programs[origin].decoders[m / gsize]
            .receive_symbol(m % gsize, &symbol_word(m).to_le_bytes());
        debug_assert!(seeded, "distinct unit seeds are always innovative");
    }
    let (programs, mut stats) = sim.run(programs, 64 * (n + nmsg) + 4096)?;
    stats.wasted_bandwidth = programs.iter().map(|p| p.wasted).sum();
    let complete = programs.iter().all(|p| {
        (0..gens).all(|gen| match p.decoders[gen].decode() {
            None => false,
            Some(payloads) => payloads
                .iter()
                .enumerate()
                .all(|(i, payload)| payload[..] == symbol_word(gen * gsize + i).to_le_bytes()),
        })
    });
    Ok(DistGossipReport {
        complete,
        per_tree_load: vec![0; packing.num_trees()],
        stats,
    })
}

/// Result of a fault-injected protocol run ([`gossip_protocol_faulty`]).
#[derive(Clone, Debug)]
pub struct FaultyDistGossipReport {
    /// Whether every *surviving* node received every message that was
    /// not lost outright.
    pub complete: bool,
    /// Messages whose every copy sat on a dead node when the faulted
    /// phase quiesced (possible only when an origin dies before its
    /// first broadcast, or when faults exceed the packing's
    /// connectivity).
    pub lost_messages: usize,
    /// Messages the repair phase re-injected on a surviving tree (or as
    /// a flood when no tree could carry them).
    pub reinjected: usize,
    /// Tokens assigned to each tree at the origin.
    pub per_tree_load: Vec<usize>,
    /// Cumulative statistics: the faulted run plus the repair run.
    pub stats: RunStats,
}

/// Sentinel token tree id: a flood token, relayed by every surviving
/// node instead of one tree's members.
const FLOOD_TOKEN: u32 = u32::MAX;

/// [`gossip_protocol_with`] under a seeded [`FaultPlan`], in two phases:
/// the protocol first runs on a faulted simulator (dead nodes fall
/// silent mid-round, in-flight messages drop — the engine-level
/// semantics of `decomp_congest::fault`), then any message a surviving
/// node is still missing is re-injected from a live holder on the
/// lowest-id tree that is intact on the survivors — or as a flood token
/// every survivor relays — on a second, fault-quiesced simulator run.
/// Statistics are cumulative across both phases.
///
/// With `f < k` faults against a `k`-connected packing and fault rounds
/// late enough for each origin's first broadcast (round ≥ 2), no
/// message is lost and `complete` holds on every fixture family — the
/// protocol-level counterpart of
/// [`crate::gossip::gossip_via_trees_faulty`].
///
/// # Errors
/// Propagates simulator round-limit errors from either phase.
///
/// # Panics
/// Panics if the packing is empty (or carries no weight under
/// [`TreeChoice::Weighted`]) or `g` is disconnected.
pub fn gossip_protocol_faulty(
    g: &Graph,
    packing: &DomTreePacking,
    origins: &[NodeId],
    seed: u64,
    config: GossipConfig,
    plan: &FaultPlan,
    engine: EngineKind,
) -> Result<FaultyDistGossipReport, SimError> {
    assert!(packing.num_trees() > 0, "need at least one tree");
    assert!(
        decomp_graph::traversal::is_connected(g),
        "gossip requires a connected graph"
    );
    // The repair phase reasons about surviving *trees*; coded gossip has
    // no tree-bound repair story at the protocol layer — the
    // schedule-level `gossip_via_trees_faulty` covers RLNC under faults.
    assert_eq!(
        config.regime,
        Regime::Trees,
        "gossip_protocol_faulty supports the tree regimes only"
    );
    let n = g.n();
    let nmsg = origins.len();
    let num_trees = packing.num_trees();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut membership: Vec<Vec<u32>> = vec![Vec::new(); n];
    for (t, tree) in packing.trees.iter().enumerate() {
        for v in tree.vertices(n) {
            membership[v].push(t as u32);
        }
    }
    let sampler = match config.tree_choice {
        TreeChoice::Uniform => None,
        TreeChoice::Weighted => Some(packing.sampler()),
    };
    let mut per_tree_load = vec![0usize; num_trees];
    let mut tree_of: Vec<u64> = Vec::with_capacity(nmsg);
    let mut injections: Vec<std::collections::VecDeque<(u64, u64)>> = vec![Default::default(); n];
    for (i, &origin) in origins.iter().enumerate() {
        let tree = match &sampler {
            None => rng.gen_range(0..num_trees) as u64,
            Some(s) => s.sample(&mut rng) as u64,
        };
        per_tree_load[tree as usize] += 1;
        tree_of.push(tree);
        injections[origin].push_back((i as u64, tree));
    }
    let make_programs = |membership: &[Vec<u32>],
                         mut injections: Vec<std::collections::VecDeque<(u64, u64)>>|
     -> Vec<GossipProgram> {
        (0..n)
            .map(|v| {
                let inject = std::mem::take(&mut injections[v]);
                GossipProgram {
                    trees: membership[v].clone(),
                    queue: Default::default(),
                    seen: inject.iter().map(|&(m, _)| m).collect(),
                    received: Default::default(),
                    inject,
                    wasted: 0,
                }
            })
            .collect()
    };
    let cap = 64 * (n + nmsg) + 4096;

    // Phase 1: the protocol under fire.
    let mut sim = Simulator::with_seed(g, Model::VCongest, seed)
        .with_engine(engine)
        .with_faults(plan.clone());
    let (phase1, mut stats) = sim.run(make_programs(&membership, injections), cap)?;
    stats.wasted_bandwidth = phase1.iter().map(|p| p.wasted).sum();

    // The survivors' view once every fault has fired.
    let dead_list = plan.dead_vertices_after(usize::MAX);
    let mut dead = vec![false; n];
    for &v in &dead_list {
        dead[v] = true;
    }
    // Arrivals have all fired by `usize::MAX`, so the survivors' view
    // only needs the cuts (an activated edge is just a live edge).
    let mut cut: Vec<(usize, usize)> = plan
        .events()
        .iter()
        .filter_map(|e| match e.fault {
            Fault::Edge(u, v) => Some((u, v)),
            _ => None,
        })
        .collect();
    cut.sort_unstable();
    let edge_ok = |u: usize, v: usize| {
        !dead[u] && !dead[v] && cut.binary_search(&(u.min(v), u.max(v))).is_err()
    };
    let is_member = |t: usize, v: usize| membership[v].binary_search(&(t as u32)).is_ok();
    // A tree is intact on the survivors iff its members are all alive,
    // its edges all uncut, and every survivor is still dominated
    // through a live edge.
    let tree_intact = |t: usize| {
        packing.trees[t].edges.iter().all(|&(u, v)| edge_ok(u, v))
            && packing.trees[t].singleton.is_none_or(|s| !dead[s])
            && (0..n).filter(|&v| !dead[v] && !is_member(t, v)).all(|v| {
                g.neighbors(v)
                    .iter()
                    .any(|&u| is_member(t, u) && edge_ok(v, u))
            })
    };
    let intact: Vec<bool> = (0..num_trees).map(&tree_intact).collect();

    // Repair: re-inject every message some survivor is still missing,
    // from a live holder, on a surviving tree (or as a flood).
    let mut reinjections: Vec<std::collections::VecDeque<(u64, u64)>> = vec![Default::default(); n];
    let mut lost = vec![false; nmsg];
    let mut reinjected = 0usize;
    for m in 0..nmsg {
        let missing = (0..n).any(|v| !dead[v] && !phase1[v].received.contains(&(m as u64)));
        if !missing {
            continue;
        }
        let holders: Vec<usize> = (0..n)
            .filter(|&v| !dead[v] && phase1[v].received.contains(&(m as u64)))
            .collect();
        if holders.is_empty() {
            lost[m] = true;
            continue;
        }
        let eligible = |t: usize, v: usize| is_member(t, v) || v == origins[m];
        let carrier = (0..num_trees)
            .find(|&t| intact[t] && holders.iter().any(|&v| eligible(t, v)))
            .map(|t| t as u32)
            .unwrap_or(FLOOD_TOKEN);
        let injector = *holders
            .iter()
            .find(|&&v| carrier == FLOOD_TOKEN || eligible(carrier as usize, v))
            .expect("carrier choice guarantees an eligible holder");
        reinjections[injector].push_back((m as u64, carrier as u64));
        reinjected += 1;
    }

    // Messages neither delivered everywhere nor re-injected are lost —
    // with no survivor holding a copy, the repair phase has nothing to
    // work with, so completeness is judged over the rest.
    stats.repair_events += reinjected;
    let any_flood = reinjections
        .iter()
        .flatten()
        .any(|&(_, c)| c == FLOOD_TOKEN as u64);
    let mut complete = true;
    if reinjected > 0 {
        // Every survivor relays flood tokens; tree tokens keep their
        // membership.
        let membership2: Vec<Vec<u32>> = (0..n)
            .map(|v| {
                let mut t = membership[v].clone();
                t.push(FLOOD_TOKEN);
                t
            })
            .collect();
        // Same final topology, quiesced: every fault fires at round 0.
        let plan0 = FaultPlan::new(plan.events().iter().map(|e| ScheduledFault {
            round: 0,
            fault: e.fault,
        }));
        let mut sim2 = Simulator::with_seed(g, Model::VCongest, seed ^ 0xf1f0_0d17)
            .with_engine(engine)
            .with_faults(plan0);
        let (phase2, stats2) = sim2.run(make_programs(&membership2, reinjections), cap)?;
        // Every phase-2 round may carry flood tokens, so the flood
        // column charges the whole repair run when any message fell
        // back to flooding (no surviving tree could carry it).
        if any_flood {
            stats.flood_rounds += stats2.rounds;
        }
        stats.absorb(stats2);
        stats.wasted_bandwidth += phase2.iter().map(|p| p.wasted).sum::<usize>();
        complete = (0..n).filter(|&v| !dead[v]).all(|v| {
            (0..nmsg).all(|m| {
                lost[m]
                    || phase1[v].received.contains(&(m as u64))
                    || phase2[v].received.contains(&(m as u64))
            })
        });
    }

    Ok(FaultyDistGossipReport {
        complete,
        lost_messages: lost.iter().filter(|&&l| l).count(),
        reinjected,
        per_tree_load,
        stats,
    })
}

/// Why [`gossip_protocol_churn`] refused to run or failed.
#[derive(Debug)]
pub enum ChurnProtocolError {
    /// The fault plan failed [`FaultPlan::validate`].
    Plan(decomp_congest::FaultPlanError),
    /// The final topology is disconnected.
    Disconnected,
    /// A simulator phase exceeded its round cap.
    Sim(SimError),
}

impl std::fmt::Display for ChurnProtocolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ChurnProtocolError::Plan(e) => write!(f, "invalid churn plan: {e}"),
            ChurnProtocolError::Disconnected => {
                write!(f, "churn gossip requires a connected final graph")
            }
            ChurnProtocolError::Sim(e) => write!(f, "simulator phase failed: {e}"),
        }
    }
}

impl std::error::Error for ChurnProtocolError {}

/// Result of a churn-injected protocol run ([`gossip_protocol_churn`]).
#[derive(Clone, Debug)]
pub struct ChurnDistGossipReport {
    /// Whether every surviving node received every non-lost message.
    pub complete: bool,
    /// Messages whose every copy sat on a dead node after phase 1.
    pub lost_messages: usize,
    /// Messages the repair phase re-injected.
    pub reinjected: usize,
    /// Touched classes whose dominating tree was re-extracted from the
    /// incrementally repacked [`ClassState`](decomp_core::cds::class_state::ClassState) for the repair phase.
    pub reextractions: usize,
    /// Classes certified over the survivors (tree available to repair).
    pub certified_classes: usize,
    /// Cumulative statistics across both phases, with
    /// [`RunStats::repair_events`] / [`RunStats::flood_rounds`] set.
    pub stats: RunStats,
}

/// [`gossip_protocol_faulty`] for live churn: the plan may also carry
/// [`Fault::AddVertex`] / [`Fault::AddEdge`] events (the engines handle
/// dormancy natively), and the repair phase re-injects on trees
/// **re-extracted between the phases** from the incrementally
/// repacked [`ClassState`](decomp_core::cds::class_state::ClassState) — flood fallback only when a message's
/// holders sit outside every certified class.
///
/// `state` must be the [`ClassState`](decomp_core::cds::class_state::ClassState) the `cds` packing was built with
/// over the **final** topology
/// ([`cds_packing_with_state`](decomp_core::cds::centralized::cds_packing_with_state));
/// on return it reflects the post-churn membership. Arrivals are
/// membership no-ops here (the state already holds the final
/// population), so only deaths and cuts repack — each touching only
/// its own classes.
#[allow(clippy::too_many_arguments)] // churn protocol plumbing
pub fn gossip_protocol_churn(
    g: &Graph,
    cds: &decomp_core::cds::centralized::CdsPacking,
    state: &mut decomp_core::cds::class_state::ClassState,
    origins: &[NodeId],
    seed: u64,
    config: GossipConfig,
    plan: &FaultPlan,
    engine: EngineKind,
) -> Result<ChurnDistGossipReport, ChurnProtocolError> {
    run_protocol_churn(g, None, cds, state, origins, seed, config, plan, engine)
}

/// [`gossip_protocol_churn`] over a *growing* topology: phase 1 runs the
/// engines on `gg.base()` through the growth view
/// ([`Simulator::with_growth`]) — each round's neighbor lists are the
/// edges with activation epoch `<= round`, so no engine ever sees the
/// final adjacency up front. Class-free arrivals (vertices the packing
/// predates) are *admitted* into the maintained class state between the
/// phases ([`ClassState::admit_vertex`](decomp_core::cds::class_state::ClassState::admit_vertex)),
/// so repair re-injection serves them from re-extracted trees instead of
/// flooding; [`RunStats::admitted_via_packing`] /
/// [`RunStats::flood_served`] report the split. The repair phase itself
/// runs over the final topology (its quiesced round-0 plan activates
/// everything immediately).
///
/// Build `gg` with
/// [`FaultPlan::growth_topology`] so overlay epochs match the plan's
/// arrival rounds. Engine choice never changes any output — the growing
/// run is bit-identical across `sequential` / `sharded` backends and
/// shard counts, exactly like the settled one.
#[allow(clippy::too_many_arguments)] // churn protocol plumbing
pub fn gossip_protocol_growth(
    gg: &GrowableGraph,
    cds: &decomp_core::cds::centralized::CdsPacking,
    state: &mut decomp_core::cds::class_state::ClassState,
    origins: &[NodeId],
    seed: u64,
    config: GossipConfig,
    plan: &FaultPlan,
    engine: EngineKind,
) -> Result<ChurnDistGossipReport, ChurnProtocolError> {
    let gfull = gg.final_graph();
    run_protocol_churn(
        &gfull,
        Some(gg),
        cds,
        state,
        origins,
        seed,
        config,
        plan,
        engine,
    )
}

/// Shared body of [`gossip_protocol_churn`] (settled, `growth: None`)
/// and [`gossip_protocol_growth`]. `g` is always the final topology;
/// `growth` carries the phase-1 delivery view when the run grows.
#[allow(clippy::too_many_arguments)] // churn protocol plumbing
fn run_protocol_churn(
    g: &Graph,
    growth: Option<&GrowableGraph>,
    cds: &decomp_core::cds::centralized::CdsPacking,
    state: &mut decomp_core::cds::class_state::ClassState,
    origins: &[NodeId],
    seed: u64,
    config: GossipConfig,
    plan: &FaultPlan,
    engine: EngineKind,
) -> Result<ChurnDistGossipReport, ChurnProtocolError> {
    use decomp_core::cds::tree_extract::{reextract_class_tree, to_dom_tree_packing_with_state};

    plan.validate(g).map_err(ChurnProtocolError::Plan)?;
    if !decomp_graph::traversal::is_connected(g) {
        return Err(ChurnProtocolError::Disconnected);
    }
    assert_eq!(
        config.regime,
        Regime::Trees,
        "gossip_protocol_churn supports the tree regimes only"
    );
    let n = g.n();
    let nmsg = origins.len();
    let num_classes = cds.num_classes();

    // Phase-1 routing: trees certified over the final topology (dormant
    // members simply stay silent until they arrive).
    let packing = to_dom_tree_packing_with_state(g, cds, state).packing;
    assert!(packing.num_trees() > 0, "need at least one certified class");
    let num_trees = packing.num_trees();
    let mut membership: Vec<Vec<u32>> = vec![Vec::new(); n];
    for (t, tree) in packing.trees.iter().enumerate() {
        for v in tree.vertices(n) {
            membership[v].push(t as u32);
        }
    }
    let sampler = match config.tree_choice {
        TreeChoice::Uniform => None,
        TreeChoice::Weighted => Some(packing.sampler()),
    };
    let mut rng = StdRng::seed_from_u64(seed);
    let mut injections: Vec<std::collections::VecDeque<(u64, u64)>> = vec![Default::default(); n];
    for (i, &origin) in origins.iter().enumerate() {
        let tree = match &sampler {
            None => rng.gen_range(0..num_trees) as u64,
            Some(s) => s.sample(&mut rng) as u64,
        };
        injections[origin].push_back((i as u64, tree));
    }
    let make_programs = |membership: &[Vec<u32>],
                         mut injections: Vec<std::collections::VecDeque<(u64, u64)>>|
     -> Vec<GossipProgram> {
        (0..n)
            .map(|v| {
                let inject = std::mem::take(&mut injections[v]);
                GossipProgram {
                    trees: membership[v].clone(),
                    queue: Default::default(),
                    seen: inject.iter().map(|&(m, _)| m).collect(),
                    received: Default::default(),
                    inject,
                    wasted: 0,
                }
            })
            .collect()
    };
    // The run idles until the last arrival if it must.
    let last_event = plan.events().last().map_or(0, |e| e.round);
    let cap = 64 * (n + nmsg) + 4096 + last_event;

    // Phase 1: the protocol under churn. A growing run delivers over
    // the view (base CSR + epoch-stamped overlay) — the base is the
    // engines' bookkeeping topology, never their adjacency source.
    let mut sim = Simulator::with_seed(growth.map_or(g, |gg| gg.base()), Model::VCongest, seed)
        .with_engine(engine)
        .with_faults(plan.clone());
    if let Some(gg) = growth {
        sim = sim.with_growth(gg);
    }
    let (phase1, mut stats) = sim
        .run(make_programs(&membership, injections), cap)
        .map_err(ChurnProtocolError::Sim)?;
    stats.wasted_bandwidth = phase1.iter().map(|p| p.wasted).sum();

    // The survivors' final view; arrivals have all fired.
    let dead_list = plan.dead_vertices_after(usize::MAX);
    let mut dead = vec![false; n];
    for &v in &dead_list {
        dead[v] = true;
    }
    let mut cut: Vec<(usize, usize)> = plan
        .events()
        .iter()
        .filter_map(|e| match e.fault {
            Fault::Edge(u, v) => Some((u, v)),
            _ => None,
        })
        .collect();
    cut.sort_unstable();
    let edge_ok = |u: usize, v: usize| {
        !dead[u] && !dead[v] && cut.binary_search(&(u.min(v), u.max(v))).is_err()
    };

    // Apply the churn to the class state. The state already holds the
    // final membership of every *packed* vertex, so those arrivals
    // repack nothing; deaths and cuts each repair exactly their touched
    // classes. A class-free arrival — a vertex the packing predates —
    // is admitted incrementally in growth mode (tree service for the
    // newcomer) and counted against the flood fallback otherwise.
    let g_surv = plan.surviving_graph(g, usize::MAX);
    let mut touched: std::collections::BTreeSet<usize> = Default::default();
    let mut admitted_via_packing = 0usize;
    let mut flood_served = 0usize;
    for e in plan.events() {
        match e.fault {
            Fault::Vertex(v) => {
                for c in state.delete_vertex(&g_surv, v) {
                    touched.insert(c as usize);
                }
            }
            Fault::Edge(u, v) => {
                for c in state.delete_edge(&g_surv, u, v) {
                    touched.insert(c as usize);
                }
            }
            Fault::AddVertex(v) => {
                if !dead[v] && state.classes_at(v).is_empty() {
                    if growth.is_some() {
                        let entered = state.admit_vertex(&g_surv, v);
                        if entered.is_empty() {
                            flood_served += 1;
                        } else {
                            admitted_via_packing += 1;
                        }
                        for c in entered {
                            touched.insert(c as usize);
                        }
                    } else {
                        flood_served += 1;
                    }
                }
            }
            Fault::AddEdge(_, _) => {}
        }
    }
    stats.admitted_via_packing = admitted_via_packing;
    stats.flood_served = flood_served;
    let mut members: Vec<Vec<NodeId>> = vec![Vec::new(); num_classes];
    for v in 0..n {
        for &c in state.classes_at(v) {
            members[c as usize].push(v);
        }
    }
    let dominates = |ms: &[NodeId]| {
        let mut is_m = vec![false; n];
        for &v in ms {
            is_m[v] = true;
        }
        (0..n)
            .filter(|&v| !dead[v] && !is_m[v])
            .all(|v| g.neighbors(v).iter().any(|&u| is_m[u] && edge_ok(v, u)))
    };

    // Tree re-extraction between the phases: untouched certified
    // classes keep their tree (members and tree edges intact — only
    // domination can break, through a cut to a non-member); touched
    // ones re-extract from the repaired state, which can also revive
    // classes that were invalid over the full topology.
    let mut repaired: Vec<Option<decomp_core::packing::WeightedDomTree>> = vec![None; num_classes];
    for tree in &packing.trees {
        if !touched.contains(&tree.id) && dominates(&members[tree.id]) {
            repaired[tree.id] = Some(tree.clone());
        }
    }
    let mut reextractions = 0usize;
    for &c in &touched {
        if state.component_count(c) == 1 && dominates(&members[c]) {
            repaired[c] = reextract_class_tree(g, c, &members[c], edge_ok);
            if repaired[c].is_some() {
                reextractions += 1;
            }
        }
    }
    let certified_classes = repaired.iter().filter(|t| t.is_some()).count();
    let class_member = |c: usize, v: usize| members[c].binary_search(&v).is_ok();

    // Repair: re-inject every message some survivor is still missing,
    // from a live holder, on a re-extracted certified class (or as a
    // flood when no class can carry it).
    let mut reinjections: Vec<std::collections::VecDeque<(u64, u64)>> = vec![Default::default(); n];
    let mut lost = vec![false; nmsg];
    let mut reinjected = 0usize;
    for m in 0..nmsg {
        let missing = (0..n).any(|v| !dead[v] && !phase1[v].received.contains(&(m as u64)));
        if !missing {
            continue;
        }
        let holders: Vec<usize> = (0..n)
            .filter(|&v| !dead[v] && phase1[v].received.contains(&(m as u64)))
            .collect();
        if holders.is_empty() {
            lost[m] = true;
            continue;
        }
        let eligible = |c: usize, v: usize| class_member(c, v) || v == origins[m];
        let carrier = (0..num_classes)
            .find(|&c| repaired[c].is_some() && holders.iter().any(|&v| eligible(c, v)))
            .map(|c| c as u32)
            .unwrap_or(FLOOD_TOKEN);
        let injector = *holders
            .iter()
            .find(|&&v| carrier == FLOOD_TOKEN || eligible(carrier as usize, v))
            .expect("carrier choice guarantees an eligible holder");
        reinjections[injector].push_back((m as u64, carrier as u64));
        reinjected += 1;
    }
    stats.repair_events += reinjected;
    let any_flood = reinjections
        .iter()
        .flatten()
        .any(|&(_, c)| c == FLOOD_TOKEN as u64);

    let mut complete = true;
    if reinjected > 0 {
        // Phase-2 tokens are keyed by *class id*; members of certified
        // classes relay their class, every survivor relays floods.
        let membership2: Vec<Vec<u32>> = (0..n)
            .map(|v| {
                let mut t: Vec<u32> = (0..num_classes)
                    .filter(|&c| repaired[c].is_some() && class_member(c, v))
                    .map(|c| c as u32)
                    .collect();
                t.push(FLOOD_TOKEN);
                t
            })
            .collect();
        // Same final topology, quiesced: every fault fires at round 0
        // (arrivals at round 0 are simply present from the start).
        let plan0 = FaultPlan::new(plan.events().iter().map(|e| ScheduledFault {
            round: 0,
            fault: e.fault,
        }));
        let mut sim2 = Simulator::with_seed(g, Model::VCongest, seed ^ 0xf1f0_0d17)
            .with_engine(engine)
            .with_faults(plan0);
        let (phase2, stats2) = sim2
            .run(make_programs(&membership2, reinjections), cap)
            .map_err(ChurnProtocolError::Sim)?;
        if any_flood {
            stats.flood_rounds += stats2.rounds;
        }
        stats.absorb(stats2);
        stats.wasted_bandwidth += phase2.iter().map(|p| p.wasted).sum::<usize>();
        complete = (0..n).filter(|&v| !dead[v]).all(|v| {
            (0..nmsg).all(|m| {
                lost[m]
                    || phase1[v].received.contains(&(m as u64))
                    || phase2[v].received.contains(&(m as u64))
            })
        });
    }

    Ok(ChurnDistGossipReport {
        complete,
        lost_messages: lost.iter().filter(|&&l| l).count(),
        reinjected,
        reextractions,
        certified_classes,
        stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use decomp_core::cds::centralized::{cds_packing, CdsPackingConfig};
    use decomp_core::cds::tree_extract::to_dom_tree_packing;
    use decomp_graph::generators;

    fn packing_for(g: &Graph, k: usize, seed: u64) -> DomTreePacking {
        let p = cds_packing(g, &CdsPackingConfig::with_known_k(k, seed));
        to_dom_tree_packing(g, &p).packing
    }

    #[test]
    fn protocol_delivers_everything() {
        let g = generators::harary(8, 40);
        let packing = packing_for(&g, 8, 1);
        let origins: Vec<usize> = (0..g.n()).collect();
        let r = gossip_protocol(&g, &packing, &origins, 5).unwrap();
        assert!(r.complete, "every node must receive every message");
        assert!(r.stats.rounds > 0);
        assert!(r.stats.messages > 0);
        assert_eq!(r.per_tree_load.iter().sum::<usize>(), origins.len());
    }

    #[test]
    fn agrees_with_schedule_simulation_on_completion() {
        let g = generators::thick_path(4, 6);
        let packing = packing_for(&g, 4, 3);
        let origins: Vec<usize> = (0..2 * g.n()).map(|i| i % g.n()).collect();
        let protocol = gossip_protocol(&g, &packing, &origins, 7).unwrap();
        let schedule = crate::gossip::gossip_via_trees(&g, &packing, &origins, 7);
        assert!(protocol.complete);
        // FIFO relaying is at most a small factor slower than the greedy
        // central scheduler.
        assert!(
            protocol.stats.rounds <= 4 * schedule.rounds + 16,
            "protocol {} vs schedule {}",
            protocol.stats.rounds,
            schedule.rounds
        );
    }

    #[test]
    fn single_message_floods_fast() {
        let g = generators::cycle(12);
        let packing = packing_for(&g, 2, 0);
        let r = gossip_protocol(&g, &packing, &[4], 1).unwrap();
        assert!(r.complete);
        assert!(r.stats.rounds <= 40);
    }

    #[test]
    fn empty_workload_no_rounds_needed() {
        let g = generators::cycle(5);
        let packing = packing_for(&g, 2, 0);
        let r = gossip_protocol(&g, &packing, &[], 0).unwrap();
        assert!(r.complete);
    }

    /// A cycle carrying one dominating tree that spans every vertex, so
    /// each origin sits inside the tree carrying its own message — the
    /// configuration that used to double-relay.
    fn full_cycle_packing(n: usize) -> (Graph, DomTreePacking) {
        let g = generators::cycle(n);
        let packing = DomTreePacking {
            trees: vec![decomp_core::packing::WeightedDomTree {
                id: 0,
                weight: 1.0,
                edges: (0..n - 1).map(|i| (i, i + 1)).collect(),
                singleton: None,
            }],
        };
        packing.validate(&g, 1e-9).unwrap();
        (g, packing)
    }

    #[test]
    fn duplicate_relay_regression_origin_broadcasts_once() {
        // Every vertex of the cycle is a member of the one tree, so with
        // no duplicate relays each of the `N` messages is broadcast by
        // each of the `n` vertices exactly once (the origin at injection,
        // everyone else on first reception), and every broadcast delivers
        // to the cycle's 2 neighbors: `RunStats.messages` must equal
        // exactly `2 · n · N`. The pre-fix protocol did not mark injected
        // messages as seen, so a tree-member origin re-queued its own
        // message when the broadcast echoed back via `accept` — one extra
        // broadcast (2 extra deliveries) per message, failing this pin.
        let n = 8;
        let (g, packing) = full_cycle_packing(n);
        let origins: Vec<usize> = (0..n).collect();
        let mut sim = decomp_congest::Simulator::with_seed(&g, Model::VCongest, 3)
            .with_engine(decomp_testkit::engine_from_env());
        let r =
            gossip_protocol_on(&mut sim, &packing, &origins, 3, GossipConfig::default()).unwrap();
        assert!(r.complete, "every node must receive every message");
        assert_eq!(
            r.stats.messages,
            2 * n * origins.len(),
            "per-(node, message) broadcast count must be exactly one \
             broadcast per tree vertex per message — duplicates detected"
        );
    }

    #[test]
    fn faulty_protocol_completes_below_connectivity() {
        // f = 3 < κ = 8 node kills from round 2 on (each origin has
        // broadcast once, so ≥ deg + 1 > f copies exist): nothing is
        // lost and every survivor ends up with every message, possibly
        // via the repair phase.
        let g = generators::harary(8, 40);
        let packing = packing_for(&g, 8, 1);
        let origins: Vec<usize> = (0..g.n()).collect();
        let plan = FaultPlan::random_vertices(&g, 3, (2, 6), 21);
        let r = gossip_protocol_faulty(
            &g,
            &packing,
            &origins,
            5,
            GossipConfig::default(),
            &plan,
            decomp_testkit::engine_from_env(),
        )
        .unwrap();
        assert!(r.complete, "survivors must receive every message");
        assert_eq!(r.lost_messages, 0, "f < k loses nothing");
        assert!(r.stats.rounds > 0);
    }

    #[test]
    fn origin_killed_at_injection_loses_exactly_its_message() {
        // Node 4's message dies with it before the first broadcast; the
        // other messages must still reach every survivor.
        let g = generators::harary(4, 16);
        let packing = packing_for(&g, 4, 2);
        let origins: Vec<usize> = (0..g.n()).collect();
        let plan = FaultPlan::new([ScheduledFault {
            round: 0,
            fault: Fault::Vertex(4),
        }]);
        let r = gossip_protocol_faulty(
            &g,
            &packing,
            &origins,
            7,
            GossipConfig::default(),
            &plan,
            decomp_testkit::engine_from_env(),
        )
        .unwrap();
        assert_eq!(r.lost_messages, 1, "only the dead origin's message dies");
        assert!(
            r.complete,
            "completeness is judged over the non-lost messages"
        );
    }

    #[test]
    fn faulty_protocol_is_engine_equivalent_and_deterministic() {
        let g = generators::harary(6, 30);
        let packing = packing_for(&g, 6, 4);
        let origins: Vec<usize> = (0..g.n()).collect();
        let plan = FaultPlan::random_vertices(&g, 4, (2, 5), 9);
        let run = |engine| {
            let r = gossip_protocol_faulty(
                &g,
                &packing,
                &origins,
                3,
                GossipConfig::weighted(),
                &plan,
                engine,
            )
            .unwrap();
            (
                r.complete,
                r.lost_messages,
                r.reinjected,
                r.per_tree_load.clone(),
                r.stats.locality_blind(),
            )
        };
        let engines = decomp_testkit::engines();
        let baseline = run(engines[0]);
        assert!(baseline.0);
        assert_eq!(baseline.1, 0);
        for &engine in &engines[1..] {
            assert_eq!(run(engine), baseline, "{engine} diverged");
        }
    }

    #[test]
    fn rlnc_protocol_delivers_and_decodes() {
        let g = generators::harary(8, 40);
        let packing = packing_for(&g, 8, 1);
        let origins: Vec<usize> = (0..g.n()).collect();
        let r = gossip_protocol_with(&g, &packing, &origins, 5, GossipConfig::rlnc(8, 3)).unwrap();
        assert!(r.complete, "every node must decode every generation");
        assert!(r.stats.rounds > 0);
        assert!(r.stats.messages > 0);
        // Coded gossip commits to no trees: the per-tree ledger stays empty.
        assert!(r.per_tree_load.iter().all(|&l| l == 0));
        // All-to-all coded gossip on a dense graph inevitably delivers
        // some non-innovative packets — the waste ledger must see them.
        assert!(r.stats.wasted_bandwidth > 0);
    }

    #[test]
    fn rlnc_protocol_is_engine_equivalent_and_deterministic() {
        let g = generators::harary(6, 30);
        let packing = packing_for(&g, 6, 4);
        let origins: Vec<usize> = (0..g.n()).collect();
        let run = |engine| {
            let mut sim =
                decomp_congest::Simulator::with_seed(&g, Model::VCongest, 11).with_engine(engine);
            let r = gossip_protocol_on(&mut sim, &packing, &origins, 11, GossipConfig::rlnc(6, 17))
                .unwrap();
            (
                r.complete,
                r.per_tree_load.clone(),
                r.stats.locality_blind(),
            )
        };
        let engines = decomp_testkit::engines();
        let baseline = run(engines[0]);
        assert!(baseline.0);
        for &engine in &engines[1..] {
            assert_eq!(run(engine), baseline, "{engine} diverged");
        }
        // Double-run under the same engine: bit-identical, not just close.
        assert_eq!(run(engines[0]), baseline, "re-run diverged");
    }

    #[test]
    fn churn_protocol_reextracts_and_serves_survivors() {
        use decomp_core::cds::centralized::cds_packing_with_state;
        // One mid-run kill and one arrival: the kill touches its
        // classes (incremental repack + tree re-extraction), the
        // arrival is a membership no-op, and every survivor —
        // including the newcomer — must end complete.
        let g = generators::harary(8, 40);
        let (cds, mut state) = cds_packing_with_state(&g, &CdsPackingConfig::with_known_k(8, 1));
        let newcomer = 17;
        let origins: Vec<usize> = (0..g.n()).filter(|&v| v != newcomer).collect();
        let plan = FaultPlan::new([
            ScheduledFault {
                round: 2,
                fault: Fault::AddVertex(newcomer),
            },
            ScheduledFault {
                round: 3,
                fault: Fault::Vertex(5),
            },
        ]);
        let r = gossip_protocol_churn(
            &g,
            &cds,
            &mut state,
            &origins,
            13,
            GossipConfig::default(),
            &plan,
            decomp_testkit::engine_from_env(),
        )
        .unwrap();
        assert!(r.complete, "survivors (incl. the newcomer) must be served");
        assert_eq!(r.lost_messages, 0, "one death below κ loses nothing");
        assert!(r.certified_classes > 0, "repair must have trees to use");
        assert_eq!(r.stats.repair_events, r.reinjected);
        // The killed vertex belonged to some class, so its classes were
        // repacked; over this κ=8 graph they stay connected and
        // dominating, so re-extraction succeeds.
        assert!(r.reextractions > 0, "the kill must re-extract its classes");
        // The state now reflects the post-churn membership.
        assert!(state.classes_at(5).is_empty());
    }

    #[test]
    fn churn_protocol_is_engine_equivalent_and_deterministic() {
        use decomp_core::cds::centralized::cds_packing_with_state;
        let g = generators::harary(6, 30);
        let origins: Vec<usize> = (0..g.n()).filter(|&v| v != 11).collect();
        let plan = FaultPlan::new([
            ScheduledFault {
                round: 2,
                fault: Fault::AddVertex(11),
            },
            ScheduledFault {
                round: 2,
                fault: Fault::Edge(0, 1),
            },
            ScheduledFault {
                round: 4,
                fault: Fault::Vertex(3),
            },
        ]);
        let run = |engine| {
            let (cds, mut state) =
                cds_packing_with_state(&g, &CdsPackingConfig::with_known_k(6, 4));
            let r = gossip_protocol_churn(
                &g,
                &cds,
                &mut state,
                &origins,
                3,
                GossipConfig::weighted(),
                &plan,
                engine,
            )
            .unwrap();
            (
                r.complete,
                r.lost_messages,
                r.reinjected,
                r.reextractions,
                r.certified_classes,
                r.stats.locality_blind(),
            )
        };
        let engines = decomp_testkit::engines();
        let baseline = run(engines[0]);
        assert!(baseline.0);
        for &engine in &engines[1..] {
            assert_eq!(run(engine), baseline, "{engine} diverged");
        }
        assert_eq!(run(engines[0]), baseline, "re-run diverged");
    }

    #[test]
    fn growth_protocol_admits_newcomers_and_is_engine_equivalent() {
        use decomp_core::cds::centralized::cds_packing_with_state;
        // Adjacency revealed only at arrival: vertex 11 is isolated in
        // the base CSR, its edges live in the growth overlay with
        // epoch = its arrival round, and the packing predates it. The
        // run must admit it into a class between the phases and stay
        // bit-identical across every engine.
        let gfull = generators::harary(6, 30);
        let newcomer = 11usize;
        let base = Graph::from_edges(
            gfull.n(),
            (0..gfull.n()).flat_map(|u| {
                gfull
                    .neighbors(u)
                    .iter()
                    .filter(move |&&v| u < v && u != newcomer && v != newcomer)
                    .map(move |&v| (u, v))
            }),
        );
        let mut events = vec![
            ScheduledFault {
                round: 2,
                fault: Fault::AddVertex(newcomer),
            },
            ScheduledFault {
                round: 4,
                fault: Fault::Vertex(3),
            },
        ];
        for &u in gfull.neighbors(newcomer) {
            events.push(ScheduledFault {
                round: 2,
                fault: Fault::AddEdge(newcomer, u),
            });
        }
        let plan = FaultPlan::new(events);
        let gg = plan.growth_topology(&base);
        assert_eq!(gg.overlay_len(), gfull.neighbors(newcomer).len());
        let origins: Vec<usize> = (0..gfull.n()).filter(|&v| v != newcomer).collect();
        let run = |engine| {
            let (mut cds, mut state) =
                cds_packing_with_state(&gfull, &CdsPackingConfig::with_known_k(6, 4));
            // Evict the newcomer: membership exactly as if the packing
            // had been built before it existed.
            for c in state.delete_vertex(&gfull, newcomer) {
                let ms = &mut cds.classes[c as usize];
                if let Ok(i) = ms.binary_search(&newcomer) {
                    ms.remove(i);
                }
            }
            let r = gossip_protocol_growth(
                &gg,
                &cds,
                &mut state,
                &origins,
                3,
                GossipConfig::weighted(),
                &plan,
                engine,
            )
            .unwrap();
            assert!(!state.classes_at(newcomer).is_empty(), "admitted");
            (
                r.complete,
                r.lost_messages,
                r.reinjected,
                r.reextractions,
                r.certified_classes,
                r.stats.locality_blind(),
            )
        };
        let engines = decomp_testkit::engines();
        let baseline = run(engines[0]);
        assert!(baseline.0, "the newcomer must be served");
        assert_eq!(baseline.5.admitted_via_packing, 1);
        assert_eq!(baseline.5.flood_served, 0);
        for &engine in &engines[1..] {
            assert_eq!(run(engine), baseline, "{engine} diverged");
        }
        assert_eq!(run(engines[0]), baseline, "re-run diverged");
    }

    #[test]
    fn churn_protocol_rejects_invalid_plans() {
        use decomp_core::cds::centralized::cds_packing_with_state;
        let g = generators::cycle(6);
        let (cds, mut state) = cds_packing_with_state(&g, &CdsPackingConfig::with_classes(1, 0));
        let plan = FaultPlan::new([ScheduledFault {
            round: 1,
            fault: Fault::AddVertex(99),
        }]);
        let err = gossip_protocol_churn(
            &g,
            &cds,
            &mut state,
            &[0],
            1,
            GossipConfig::default(),
            &plan,
            EngineKind::Sequential,
        )
        .unwrap_err();
        assert!(matches!(err, ChurnProtocolError::Plan(_)), "{err}");
    }

    #[test]
    #[should_panic(expected = "tree regimes only")]
    fn faulty_protocol_rejects_the_rlnc_regime() {
        let g = generators::harary(4, 16);
        let packing = packing_for(&g, 4, 2);
        let plan = FaultPlan::new([]);
        let _ = gossip_protocol_faulty(
            &g,
            &packing,
            &[0],
            7,
            GossipConfig::rlnc(4, 1),
            &plan,
            decomp_testkit::engine_from_env(),
        );
    }

    #[test]
    fn weighted_tokens_follow_the_shared_sampler() {
        // Weighted tree choice must route every token off a zero-weight
        // tree; uniform choice keeps using it. Both must still complete.
        let t = 6;
        let g = generators::complete_bipartite(t, 30);
        let mut packing = DomTreePacking {
            trees: (0..t)
                .map(|i| decomp_core::packing::WeightedDomTree {
                    id: i,
                    weight: 1.0,
                    edges: vec![(i, t + i)],
                    singleton: None,
                })
                .collect(),
        };
        packing.trees[0].weight = 0.0;
        let origins: Vec<usize> = (0..2 * g.n()).map(|i| i % g.n()).collect();
        let weighted = gossip_protocol_with(
            &g,
            &packing,
            &origins,
            5,
            GossipConfig {
                tree_choice: crate::gossip::TreeChoice::Weighted,
                sharing: crate::gossip::Sharing::Greedy,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(weighted.complete);
        assert_eq!(
            weighted.per_tree_load[0], 0,
            "zero-weight tree must carry no tokens under weighted choice"
        );
        assert_eq!(weighted.per_tree_load.iter().sum::<usize>(), origins.len());
        let uniform = gossip_protocol(&g, &packing, &origins, 5).unwrap();
        assert!(uniform.complete);
        assert!(
            uniform.per_tree_load[0] > 0,
            "uniform choice ignores weights (premise of the comparison)"
        );
    }
}
