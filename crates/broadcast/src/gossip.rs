//! Gossiping (all-to-all broadcast) via dominating-tree packings
//! (Appendix A, Corollary A.1).
//!
//! Every message is handed to a random tree of the packing and then
//! broadcast along that tree. The schedule is simulated faithfully at the
//! V-CONGEST level: per round, each vertex relays at most one message, and
//! a relay is a local broadcast reaching *all* graph neighbors (so
//! dominated non-tree vertices receive the message from adjacent tree
//! vertices). Corollary A.1: with `N` messages, at most `η` per node, all
//! messages reach all nodes in `O~(η + (N + n)/k)` rounds.
//!
//! ## Scale
//!
//! State is packed bitsets — per-message received rows and per-tree
//! membership rows, 1 bit per vertex — and each vertex keeps a min-heap
//! of the messages it still has to relay, driven by an active-frontier
//! worklist. A round therefore costs `O(active vertices + deliveries)`
//! instead of the historical `O(nmsg · n)` table scan, and the state for
//! an all-node workload is `nmsg · n / 64` words instead of two
//! `nmsg × n` byte tables — which is what lets 10⁵-node all-node gossip
//! fit in memory (`gossip_scale` bench, BENCH_SIM.md). The schedule
//! itself is unchanged: each vertex relays its *lowest-indexed* eligible
//! message each round, decided from the state at round start.

use decomp_core::packing::DomTreePacking;
use decomp_graph::{Graph, NodeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A row-major packed bit matrix: `rows` rows of `n` bits each.
struct BitRows {
    words_per_row: usize,
    bits: Vec<u64>,
}

impl BitRows {
    fn new(rows: usize, n: usize) -> Self {
        let words_per_row = n.div_ceil(64);
        BitRows {
            words_per_row,
            bits: vec![0; rows * words_per_row],
        }
    }

    #[inline]
    fn get(&self, row: usize, col: usize) -> bool {
        self.bits[row * self.words_per_row + col / 64] >> (col % 64) & 1 != 0
    }

    #[inline]
    fn set(&mut self, row: usize, col: usize) {
        self.bits[row * self.words_per_row + col / 64] |= 1 << (col % 64);
    }

    fn words(&self) -> usize {
        self.bits.len()
    }
}

/// Result of a gossip schedule simulation.
#[derive(Clone, Debug)]
pub struct GossipReport {
    /// Rounds until every message reached every vertex.
    pub rounds: usize,
    /// Number of messages disseminated.
    pub num_messages: usize,
    /// Messages assigned to each tree.
    pub per_tree_load: Vec<usize>,
    /// Largest tree diameter in the packing (the `O~(n/k)` term).
    pub max_tree_diameter: usize,
    /// Peak resident words of the schedule state: the packed
    /// received/membership bitsets plus the peak total size of the
    /// per-vertex relay heaps (the memory-footprint number `gossip_scale`
    /// tracks; the pre-bitset implementation held `2 · nmsg · n` bytes
    /// in `Vec<Vec<bool>>` tables instead).
    pub peak_state_words: usize,
    /// Order-independent fingerprint of the relay schedule: a
    /// commutative fold of `(round, vertex, message)` over every relay.
    /// Two runs took the same schedule iff their digests match — the
    /// regression tests compare this against a verbatim copy of the
    /// historical `O(nmsg · n)` scan.
    pub schedule_digest: u64,
}

/// SplitMix-style hash of one relay event; summed per run (within-round
/// relay order is unobservable, so the fold must be commutative).
#[inline]
fn relay_hash(round: usize, v: usize, m: usize) -> u64 {
    let mut z = (round as u64).wrapping_mul(0x9e3779b97f4a7c15) ^ (((v as u64) << 32) | m as u64);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// A message to gossip: its origin vertex.
pub type MessageOrigin = NodeId;

/// Simulates the tree-parallel gossip schedule of Appendix A.
///
/// `origins[i]` holds message `i`. Each message is assigned to a uniformly
/// random tree of `packing`; vertices relay greedily (FIFO), one message
/// per vertex per round (V-CONGEST). Terminates when every message has
/// reached every vertex.
///
/// # Panics
/// Panics if the packing is empty, a tree fails to dominate, or the graph
/// is disconnected (the schedule would never complete).
pub fn gossip_via_trees(
    g: &Graph,
    packing: &DomTreePacking,
    origins: &[MessageOrigin],
    seed: u64,
) -> GossipReport {
    assert!(packing.num_trees() > 0, "need at least one tree");
    assert!(
        decomp_graph::traversal::is_connected(g),
        "gossip requires a connected graph"
    );
    let n = g.n();
    let mut rng = StdRng::seed_from_u64(seed);
    let num_trees = packing.num_trees();

    // Per-tree membership, 1 bit per vertex.
    let mut member = BitRows::new(num_trees, n);
    let mut max_diam = 0usize;
    for (t, tree) in packing.trees.iter().enumerate() {
        for &(u, v) in &tree.edges {
            member.set(t, u);
            member.set(t, v);
        }
        if let Some(s) = tree.singleton {
            member.set(t, s);
        }
        max_diam = max_diam.max(tree.diameter(n));
    }

    // Message state.
    let nmsg = origins.len();
    let tree_of: Vec<usize> = (0..nmsg).map(|_| rng.gen_range(0..num_trees)).collect();
    let mut per_tree_load = vec![0usize; num_trees];
    for &t in &tree_of {
        per_tree_load[t] += 1;
    }
    // received: one bit row per message. A vertex's pending relays live
    // in a min-heap over message indices: the greedy schedule relays the
    // lowest-indexed eligible message, exactly as the historical
    // `O(nmsg · n)` table scan chose it. A (message, vertex) pair enters
    // a heap at most once (on the vertex's 0→1 reception, members only,
    // plus the origin hand-off), so popping doubles as the `relayed`
    // table.
    let mut received = BitRows::new(nmsg, n);
    let mut remaining: Vec<usize> = vec![n - 1; nmsg];
    let mut pending: Vec<BinaryHeap<Reverse<u32>>> = (0..n).map(|_| BinaryHeap::new()).collect();
    let mut worklist: Vec<u32> = Vec::new();
    let mut queued: Vec<bool> = vec![false; n];
    let mut incomplete = 0usize;
    for (m, &origin) in origins.iter().enumerate() {
        received.set(m, origin);
        if remaining[m] > 0 {
            incomplete += 1;
        }
        pending[origin].push(Reverse(m as u32));
        if !queued[origin] {
            queued[origin] = true;
            worklist.push(origin as u32);
        }
    }
    let mut pending_entries = nmsg;
    let mut peak_pending = pending_entries;

    let mut rounds = 0usize;
    let mut schedule_digest = 0u64;
    let round_limit = 64 * (n + nmsg) + 1024;
    let mut frontier: Vec<u32> = Vec::new();
    let mut relays: Vec<(u32, u32)> = Vec::new();
    while incomplete > 0 {
        rounds += 1;
        assert!(
            rounds <= round_limit,
            "gossip schedule failed to complete within {round_limit} rounds"
        );
        // Phase 1 — choices, from the state at round start: each active
        // vertex pops its lowest-indexed pending message, lazily
        // discarding messages that completed in earlier rounds (the old
        // scan skipped them the same way).
        std::mem::swap(&mut frontier, &mut worklist);
        relays.clear();
        for &v in &frontier {
            queued[v as usize] = false;
            while let Some(&Reverse(m)) = pending[v as usize].peek() {
                pending[v as usize].pop();
                pending_entries -= 1;
                if remaining[m as usize] > 0 {
                    relays.push((v, m));
                    break;
                }
            }
        }
        // Phase 2 — apply all relays; receptions push next-round work.
        for &(v, m) in &relays {
            schedule_digest =
                schedule_digest.wrapping_add(relay_hash(rounds, v as usize, m as usize));
            let tree = tree_of[m as usize];
            for &u in g.neighbors(v as usize) {
                if !received.get(m as usize, u) {
                    received.set(m as usize, u);
                    remaining[m as usize] -= 1;
                    if remaining[m as usize] == 0 {
                        incomplete -= 1;
                    }
                    if member.get(tree, u) {
                        pending[u].push(Reverse(m));
                        pending_entries += 1;
                        if !queued[u] {
                            queued[u] = true;
                            worklist.push(u as u32);
                        }
                    }
                }
            }
        }
        peak_pending = peak_pending.max(pending_entries);
        // Vertices that still hold pending relays stay on the frontier.
        for &v in &frontier {
            if !pending[v as usize].is_empty() && !queued[v as usize] {
                queued[v as usize] = true;
                worklist.push(v);
            }
        }
        frontier.clear();
        assert!(
            !relays.is_empty() || incomplete == 0,
            "gossip schedule stalled: a message can no longer make progress \
             (is some tree not dominating?)"
        );
    }
    GossipReport {
        rounds,
        num_messages: nmsg,
        per_tree_load,
        max_tree_diameter: max_diam,
        // Heap entries are u32s: count them in 64-bit words (2 per word).
        peak_state_words: received.words() + member.words() + peak_pending.div_ceil(2),
        schedule_digest,
    }
}

/// Baseline: the same workload over a single BFS spanning tree (the
/// pre-decomposition state of the art the paper contrasts with).
pub fn gossip_single_tree_baseline(
    g: &Graph,
    origins: &[MessageOrigin],
    seed: u64,
) -> GossipReport {
    let bfs = decomp_graph::traversal::bfs(g, 0);
    let edges: Vec<(NodeId, NodeId)> = bfs.tree_edges();
    let packing = DomTreePacking {
        trees: vec![decomp_core::packing::WeightedDomTree {
            id: 0,
            weight: 1.0,
            edges,
            singleton: if g.n() == 1 { Some(0) } else { None },
        }],
    };
    gossip_via_trees(g, &packing, origins, seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use decomp_core::cds::centralized::{cds_packing, CdsPackingConfig};
    use decomp_core::cds::tree_extract::to_dom_tree_packing;
    use decomp_graph::generators;

    fn packing_for(g: &Graph, k: usize, seed: u64) -> DomTreePacking {
        let p = cds_packing(g, &CdsPackingConfig::with_known_k(k, seed));
        let ex = to_dom_tree_packing(g, &p);
        assert!(ex.invalid_classes.is_empty());
        ex.packing
    }

    #[test]
    fn all_to_all_on_harary() {
        let g = generators::harary(12, 48);
        let packing = packing_for(&g, 12, 1);
        let origins: Vec<usize> = (0..g.n()).collect(); // one message per node
        let r = gossip_via_trees(&g, &packing, &origins, 9);
        assert_eq!(r.num_messages, 48);
        assert!(r.rounds > 0);
        let total: usize = r.per_tree_load.iter().sum();
        assert_eq!(total, 48);
    }

    /// A hand-built packing of genuinely vertex-disjoint dominating trees:
    /// in K_{t, n−t}, each pair (left_i, right_i) forms a 2-vertex
    /// dominating tree, and distinct pairs are disjoint. This is the
    /// regime Corollary 1.4 speaks about (constructed packings only become
    /// disjoint once k ≫ log n, which the bench harness exercises).
    fn disjoint_pair_packing(t: usize, n: usize) -> (Graph, DomTreePacking) {
        let g = generators::complete_bipartite(t, n - t);
        let trees = (0..t)
            .map(|i| decomp_core::packing::WeightedDomTree {
                id: i,
                weight: 1.0,
                edges: vec![(i, t + i)],
                singleton: None,
            })
            .collect();
        let packing = DomTreePacking { trees };
        packing.validate(&g, 1e-9).unwrap();
        (g, packing)
    }

    #[test]
    fn disjoint_trees_beat_single_tree() {
        let (g, packing) = disjoint_pair_packing(8, 64);
        let origins: Vec<usize> = (0..4 * g.n()).map(|i| i % g.n()).collect();
        let multi = gossip_via_trees(&g, &packing, &origins, 5);
        let single = gossip_single_tree_baseline(&g, &origins, 5);
        assert!(
            2 * multi.rounds < single.rounds,
            "8 disjoint trees ({}) must far outpace the single tree ({})",
            multi.rounds,
            single.rounds
        );
    }

    #[test]
    fn constructed_packing_not_much_worse_than_single_tree() {
        // At small scales the constructed classes overlap heavily, so no
        // speedup is expected — but the schedule must stay comparable.
        let g = generators::harary(16, 64);
        let packing = packing_for(&g, 16, 3);
        assert!(packing.num_trees() >= 4);
        let origins: Vec<usize> = (0..2 * g.n()).map(|i| i % g.n()).collect();
        let multi = gossip_via_trees(&g, &packing, &origins, 5);
        let single = gossip_single_tree_baseline(&g, &origins, 5);
        assert!(
            multi.rounds <= 2 * single.rounds + 10,
            "packing schedule ({}) should stay comparable to single tree ({})",
            multi.rounds,
            single.rounds
        );
    }

    #[test]
    fn single_message_reaches_everyone() {
        let g = generators::cycle(10);
        let packing = packing_for(&g, 2, 0);
        let r = gossip_via_trees(&g, &packing, &[3], 1);
        assert_eq!(r.num_messages, 1);
        // one message over a cycle: roughly diameter rounds
        assert!(r.rounds <= 3 * 10);
    }

    #[test]
    fn empty_workload() {
        let g = generators::cycle(5);
        let packing = packing_for(&g, 2, 0);
        let r = gossip_via_trees(&g, &packing, &[], 0);
        assert_eq!(r.rounds, 0);
        assert_eq!(r.num_messages, 0);
    }

    #[test]
    fn corollary_a1_shape() {
        // Rounds ≈ O~(η + (N + n)/k): with N = n messages and k large,
        // rounds should be well below the naive N + D bound.
        let g = generators::harary(16, 64);
        let packing = packing_for(&g, 16, 7);
        let origins: Vec<usize> = (0..g.n()).collect();
        let r = gossip_via_trees(&g, &packing, &origins, 3);
        let naive = g.n() + decomp_graph::traversal::diameter(&g).unwrap();
        assert!(
            r.rounds < 4 * naive,
            "rounds {} should be comparable to or better than naive {}",
            r.rounds,
            naive
        );
    }

    #[test]
    #[should_panic(expected = "at least one tree")]
    fn rejects_empty_packing() {
        let g = generators::cycle(4);
        gossip_via_trees(&g, &DomTreePacking::default(), &[0], 0);
    }

    /// The historical `O(nmsg · n)` schedule loop, kept verbatim as the
    /// oracle for the bitset/worklist rewrite: per round it scans every
    /// (message, vertex) pair and lets each vertex relay its
    /// lowest-indexed eligible message. Returns, per message, the round
    /// each vertex received it in (0 = held at start) — a complete
    /// trace of the schedule, not just its length.
    fn reference_schedule(
        g: &Graph,
        packing: &DomTreePacking,
        origins: &[usize],
        seed: u64,
    ) -> (usize, u64, Vec<Vec<usize>>) {
        let n = g.n();
        let mut rng = StdRng::seed_from_u64(seed);
        let num_trees = packing.num_trees();
        let mut tree_member: Vec<Vec<bool>> = Vec::with_capacity(num_trees);
        for t in &packing.trees {
            let mut member = vec![false; n];
            for &(u, v) in &t.edges {
                member[u] = true;
                member[v] = true;
            }
            if let Some(s) = t.singleton {
                member[s] = true;
            }
            tree_member.push(member);
        }
        let nmsg = origins.len();
        let tree_of: Vec<usize> = (0..nmsg).map(|_| rng.gen_range(0..num_trees)).collect();
        let mut received: Vec<Vec<bool>> = (0..nmsg)
            .map(|m| {
                let mut r = vec![false; n];
                r[origins[m]] = true;
                r
            })
            .collect();
        let mut recv_round: Vec<Vec<usize>> = (0..nmsg).map(|_| vec![usize::MAX; n]).collect();
        for m in 0..nmsg {
            recv_round[m][origins[m]] = 0;
        }
        let mut relayed: Vec<Vec<bool>> = vec![vec![false; n]; nmsg];
        let mut remaining: Vec<usize> = (0..nmsg).map(|_| n - 1).collect();
        let mut incomplete = remaining.iter().filter(|&&r| r > 0).count();
        let mut rounds = 0usize;
        let mut digest = 0u64;
        while incomplete > 0 {
            rounds += 1;
            let mut chosen: Vec<Option<usize>> = vec![None; n];
            for m in 0..nmsg {
                if remaining[m] == 0 {
                    continue;
                }
                let tree = tree_of[m];
                for v in 0..n {
                    if chosen[v].is_none()
                        && received[m][v]
                        && !relayed[m][v]
                        && (tree_member[tree][v] || v == origins[m])
                    {
                        chosen[v] = Some(m);
                    }
                }
            }
            for v in 0..n {
                if let Some(m) = chosen[v] {
                    relayed[m][v] = true;
                    digest = digest.wrapping_add(relay_hash(rounds, v, m));
                    for &u in g.neighbors(v) {
                        if !received[m][u] {
                            received[m][u] = true;
                            recv_round[m][u] = rounds;
                            remaining[m] -= 1;
                            if remaining[m] == 0 {
                                incomplete -= 1;
                            }
                        }
                    }
                }
            }
        }
        (rounds, digest, recv_round)
    }

    #[test]
    fn bitset_schedule_matches_reference_scan() {
        // Sweep families, seeds, and both packing regimes. The
        // worklist/heap rewrite claims to take the *same* greedy choice
        // every round (lowest-indexed eligible message per vertex, from
        // round-start state); `schedule_digest` — a commutative fold
        // over every (round, vertex, message) relay — must match the
        // reference scan's exactly, which pins the full schedule, not
        // just its length. The reference's reception trace also
        // certifies completeness.
        let cases: Vec<(Graph, DomTreePacking)> = vec![
            {
                let g = generators::harary(8, 40);
                let p = packing_for(&g, 8, 1);
                (g, p)
            },
            {
                let g = generators::thick_path(4, 6);
                let p = packing_for(&g, 4, 3);
                (g, p)
            },
            disjoint_pair_packing(6, 36),
            {
                let g = generators::cycle(17);
                let p = packing_for(&g, 2, 0);
                (g, p)
            },
        ];
        for (g, packing) in &cases {
            for seed in [0u64, 5, 9] {
                let origins: Vec<usize> = (0..2 * g.n()).map(|i| (i * 7) % g.n()).collect();
                let r = gossip_via_trees(g, packing, &origins, seed);
                let (ref_rounds, ref_digest, recv_round) =
                    reference_schedule(g, packing, &origins, seed);
                assert_eq!(
                    r.rounds, ref_rounds,
                    "schedule length diverged (seed {seed})"
                );
                assert_eq!(
                    r.schedule_digest, ref_digest,
                    "relay schedule diverged (seed {seed})"
                );
                for row in &recv_round {
                    assert!(
                        row.iter().all(|&rd| rd != usize::MAX),
                        "reference schedule incomplete"
                    );
                }
            }
        }
    }
}
