//! Gossiping (all-to-all broadcast) via dominating-tree packings
//! (Appendix A, Corollary A.1).
//!
//! Every message is handed to a random tree of the packing and then
//! broadcast along that tree. The schedule is simulated faithfully at the
//! V-CONGEST level: per round, each vertex relays at most one message, and
//! a relay is a local broadcast reaching *all* graph neighbors (so
//! dominated non-tree vertices receive the message from adjacent tree
//! vertices). Corollary A.1: with `N` messages, at most `η` per node, all
//! messages reach all nodes in `O~(η + (N + n)/k)` rounds.
//!
//! ## Scale
//!
//! State is packed bitsets — per-message received rows and per-tree
//! membership rows, 1 bit per vertex — and each vertex keeps a min-heap
//! of the messages it still has to relay, driven by an active-frontier
//! worklist. A round therefore costs `O(active vertices + deliveries)`
//! instead of the historical `O(nmsg · n)` table scan, and the state for
//! an all-node workload is `nmsg · n / 64` words instead of two
//! `nmsg × n` byte tables — which is what lets 10⁵-node all-node gossip
//! fit in memory (`gossip_scale` bench, BENCH_SIM.md). The default
//! schedule is unchanged: each vertex relays its *lowest-indexed*
//! eligible message each round, decided from the state at round start.
//!
//! ## The fractional regime
//!
//! The default schedule treats the packing as integral: messages pick
//! trees uniformly and vertices relay greedily. What Theorem 1.1
//! actually constructs is a *fractional* packing — trees carry weights
//! `x_τ` and overlap, and the Corollary A.1 rate assumes every shared
//! vertex time-shares its one relay slot per round across its trees in
//! proportion to the weights. [`GossipConfig`] opts the schedule into
//! that regime: [`TreeChoice::Weighted`] assigns messages to trees with
//! probability `x_τ / Σx` (the shared
//! [`decomp_core::packing::TreeSampler`]), and [`Sharing::Weighted`]
//! replaces the global lowest-index greedy pick with a deterministic
//! credit scheduler — each round every tree with an eligible pending
//! message at a vertex earns `x_τ` credit, the highest-credit tree
//! (ties to the lowest tree id) relays its lowest-indexed message, and
//! the served tree is charged the round's total accrued credit. Both
//! schedules are digest-pinned against verbatim reference scans.
//!
//! ## The network-coded regime (beyond the paper)
//!
//! [`Regime::Rlnc`] swaps tree forwarding out entirely: messages are
//! grouped into GF(2⁸) generations and relays broadcast seeded-random
//! linear combinations of their received rows ([`crate::rlnc`]). Any
//! innovative packet helps every receiver, so the convoy effect of
//! committed trees disappears; the price is per-packet coefficient
//! bandwidth and decode CPU, plus the `wasted_bandwidth` of
//! non-innovative receptions ([`GossipReport::wasted_bandwidth`]).
//! Coefficient draws come from one stream seeded by the run seed and
//! the regime's own seed, so the schedule digest pins RLNC runs
//! bit-for-bit just like the tree schedules (docs/DETERMINISM.md).
//!
//! ## Faults
//!
//! [`gossip_via_trees_faulty`] runs either schedule under a seeded
//! [`FaultPlan`]: at the start of each scheduled round the victims die
//! (or edges are cut), dead vertices' relay heaps and credit lanes are
//! dropped, and every incomplete message is re-checked for progress — a
//! message whose tree lost a member, a tree edge, or its domination of
//! the survivors (or whose only eligible relayers are gone) is
//! reassigned to the lowest-id surviving tree that holds it, or, when
//! none does, to a flood fallback where every live holder relays. With
//! `f < k` failures against a `k`-connected packing delivery to every
//! survivor still completes (the robustness reading of Theorem 1.1);
//! [`GossipReport::degradation`] records the per-fault curve.

use decomp_congest::fault::{Fault, FaultPlan};
use decomp_core::packing::{DomTreePacking, WeightedDomTree};
use decomp_graph::{Graph, NodeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A row-major packed bit matrix: `rows` rows of `n` bits each.
pub(crate) struct BitRows {
    words_per_row: usize,
    bits: Vec<u64>,
}

impl BitRows {
    pub(crate) fn new(rows: usize, n: usize) -> Self {
        let words_per_row = n.div_ceil(64);
        BitRows {
            words_per_row,
            bits: vec![0; rows * words_per_row],
        }
    }

    #[inline]
    pub(crate) fn get(&self, row: usize, col: usize) -> bool {
        self.bits[row * self.words_per_row + col / 64] >> (col % 64) & 1 != 0
    }

    #[inline]
    pub(crate) fn set(&mut self, row: usize, col: usize) {
        self.bits[row * self.words_per_row + col / 64] |= 1 << (col % 64);
    }

    #[inline]
    pub(crate) fn clear(&mut self, row: usize, col: usize) {
        self.bits[row * self.words_per_row + col / 64] &= !(1 << (col % 64));
    }

    pub(crate) fn words(&self) -> usize {
        self.bits.len()
    }
}

/// Result of a gossip schedule simulation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GossipReport {
    /// Rounds until every message reached every vertex.
    pub rounds: usize,
    /// Number of messages disseminated.
    pub num_messages: usize,
    /// Messages assigned to each tree.
    pub per_tree_load: Vec<usize>,
    /// Largest tree diameter in the packing (the `O~(n/k)` term).
    pub max_tree_diameter: usize,
    /// Peak resident words of the schedule state: the packed
    /// received/membership bitsets plus the peak total size of the
    /// per-vertex relay heaps (the memory-footprint number `gossip_scale`
    /// tracks; the pre-bitset implementation held `2 · nmsg · n` bytes
    /// in `Vec<Vec<bool>>` tables instead).
    pub peak_state_words: usize,
    /// Order-independent fingerprint of the relay schedule: a
    /// commutative fold of `(round, vertex, message)` over every relay.
    /// Two runs took the same schedule iff their digests match — the
    /// regression tests compare this against a verbatim copy of the
    /// historical `O(nmsg · n)` scan.
    pub schedule_digest: u64,
    /// One sample per fault round (empty on fault-free runs): the
    /// degradation curve of the schedule as the plan fires.
    pub degradation: Vec<DegradationSample>,
    /// Messages abandoned because every copy was on a dead vertex
    /// (possible only when a message's origin dies before its first
    /// relay, or when faults exceed the packing's connectivity).
    pub lost_messages: usize,
    /// Deliveries that taught the receiver nothing: under the tree
    /// regimes, a relay reaching a vertex that already held the message;
    /// under [`Regime::Rlnc`], a coded packet that was not innovative
    /// (it reduced to zero against the receiver's echelon rows, or the
    /// receiver had already reached full rank). The bandwidth half of
    /// the rounds-vs-bandwidth trade the regimes are benchmarked on.
    pub wasted_bandwidth: usize,
    /// Messages moved to another tree (or reseeded in place) by the
    /// fault repair passes — the cumulative `reassigned_messages` column
    /// of [`GossipReport::degradation`]. Zero on fault-free runs and
    /// under [`Regime::Rlnc`] (coding needs no repair).
    pub repair_events: usize,
    /// Rounds in which at least one relay served a message on the flood
    /// fallback. Stays zero while every message rides a real tree; under
    /// churn with re-extraction it is bounded per fault wave rather than
    /// growing with the run.
    pub flood_rounds: usize,
}

/// A snapshot of schedule health taken each time faults fire, recorded
/// in order in [`GossipReport::degradation`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DegradationSample {
    /// Schedule round (1-based) at whose start the faults fired.
    pub round: usize,
    /// Cumulative fault events fired so far, this round included.
    pub faults_fired: usize,
    /// Vertices still alive after this round's faults.
    pub live_vertices: usize,
    /// Trees still intact: members alive, tree edges uncut, and the
    /// live survivors still dominated through live edges.
    pub surviving_trees: usize,
    /// Messages not yet delivered to every live vertex.
    pub incomplete_messages: usize,
    /// Messages moved to a surviving tree (or the flood fallback) by
    /// this round's repair pass.
    pub reassigned_messages: usize,
    /// Messages declared lost by this round's repair pass.
    pub lost_messages: usize,
}

/// Why [`gossip_via_trees_faulty`] refused to run (the conditions the
/// panicking entry points `assert!` on).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GossipError {
    /// The packing holds no trees at all.
    EmptyPacking,
    /// [`TreeChoice::Weighted`] was requested but no tree carries
    /// positive weight, so the sampler has nothing to draw from.
    ZeroWeightPacking,
    /// The input graph is disconnected; no schedule can complete.
    Disconnected,
}

impl std::fmt::Display for GossipError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GossipError::EmptyPacking => write!(f, "packing holds no trees"),
            GossipError::ZeroWeightPacking => {
                write!(f, "weighted tree choice needs positive total weight")
            }
            GossipError::Disconnected => write!(f, "gossip requires a connected graph"),
        }
    }
}

impl std::error::Error for GossipError {}

/// SplitMix-style hash of one relay event; summed per run (within-round
/// relay order is unobservable, so the fold must be commutative). The
/// tree schedules hash `(round, vertex, message)`; the RLNC schedule
/// reuses it as `(round, vertex, generation)`.
#[inline]
pub(crate) fn relay_hash(round: usize, v: usize, m: usize) -> u64 {
    let mut z = (round as u64).wrapping_mul(0x9e3779b97f4a7c15) ^ (((v as u64) << 32) | m as u64);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// Sentinel tree id for the flood fallback: when no surviving tree can
/// carry a message, every live holder relays it and every live receiver
/// relays onward — BFS over the surviving graph.
const FLOOD: usize = usize::MAX;
/// `FLOOD` as a lane key (sorts after every real tree id).
const FLOOD_LANE: u32 = u32::MAX;

/// The schedulers' live view of a [`FaultPlan`]: which faults have
/// fired so far, mirroring `decomp_congest::fault::FaultState` for the
/// gossip round counter (1-based; events at rounds 0 and 1 fire before
/// the first relay choice).
pub(crate) struct FaultTracker<'p> {
    events: &'p [decomp_congest::fault::ScheduledFault],
    next: usize,
    dead: Vec<bool>,
    /// Not-yet-arrived vertices (pre-scanned from the plan's
    /// `AddVertex` events): in the final topology but unable to relay,
    /// receive, or be dominated until their arrival round fires.
    dormant: Vec<bool>,
    /// Fired edge cuts, normalized and sorted for binary search.
    cut: Vec<(u32, u32)>,
    /// Not-yet-arrived edges (pre-scanned `AddEdge` events), normalized
    /// and sorted; activation removes the entry.
    inactive: Vec<(u32, u32)>,
    live: usize,
    /// Vertices whose arrival fired in the latest `advance` call.
    woke: Vec<usize>,
}

impl<'p> FaultTracker<'p> {
    pub(crate) fn new(plan: &'p FaultPlan, n: usize) -> Self {
        let mut dormant = vec![false; n];
        let mut inactive: Vec<(u32, u32)> = Vec::new();
        let mut live = n;
        for e in plan.events() {
            match e.fault {
                Fault::AddVertex(v) => {
                    if v < n && !dormant[v] {
                        dormant[v] = true;
                        live -= 1;
                    }
                }
                Fault::AddEdge(u, v) => {
                    let key = (u.min(v) as u32, u.max(v) as u32);
                    if let Err(pos) = inactive.binary_search(&key) {
                        inactive.insert(pos, key);
                    }
                }
                Fault::Vertex(_) | Fault::Edge(_, _) => {}
            }
        }
        FaultTracker {
            events: plan.events(),
            next: 0,
            dead: vec![false; n],
            dormant,
            cut: Vec::new(),
            inactive,
            live,
            woke: Vec::new(),
        }
    }

    /// Fires every event scheduled at a round `≤ round`; vertices that
    /// died in this call are appended to `newly_dead` (a vertex killed
    /// while still dormant is included — it will never receive), and
    /// vertices whose arrival fired land in [`Self::woke`]. Returns
    /// whether anything fired (the repair-pass trigger).
    pub(crate) fn advance(&mut self, round: usize, newly_dead: &mut Vec<usize>) -> bool {
        let mut fired = false;
        self.woke.clear();
        while self.next < self.events.len() && self.events[self.next].round <= round {
            match self.events[self.next].fault {
                Fault::Vertex(v) => {
                    if v < self.dead.len() && !self.dead[v] {
                        self.dead[v] = true;
                        if !self.dormant[v] {
                            self.live -= 1;
                        }
                        newly_dead.push(v);
                    }
                }
                Fault::Edge(u, v) => {
                    let key = (u as u32, v as u32);
                    if let Err(pos) = self.cut.binary_search(&key) {
                        self.cut.insert(pos, key);
                    }
                }
                Fault::AddVertex(v) => {
                    // Death wins over arrival: a vertex killed while
                    // dormant stays dead.
                    if v < self.dead.len() && self.dormant[v] {
                        self.dormant[v] = false;
                        if !self.dead[v] {
                            self.live += 1;
                            self.woke.push(v);
                        }
                    }
                }
                Fault::AddEdge(u, v) => {
                    let key = (u.min(v) as u32, u.max(v) as u32);
                    if let Ok(pos) = self.inactive.binary_search(&key) {
                        self.inactive.remove(pos);
                    }
                }
            }
            self.next += 1;
            fired = true;
        }
        fired
    }

    #[inline]
    pub(crate) fn is_dead(&self, v: usize) -> bool {
        self.dead[v]
    }

    #[inline]
    pub(crate) fn is_dormant(&self, v: usize) -> bool {
        self.dormant[v]
    }

    /// Vertices that arrived in the latest `advance` call (alive ones
    /// only) — the schedulers re-queue their orphaned pending relays.
    #[inline]
    pub(crate) fn woke(&self) -> &[usize] {
        &self.woke
    }

    /// Round of the next unfired event, if any — the fast-forward
    /// target when the schedule idles awaiting an arrival.
    #[inline]
    pub(crate) fn next_event_round(&self) -> Option<usize> {
        self.events.get(self.next).map(|e| e.round)
    }

    /// Vertices currently alive (dormant ones excluded until arrival).
    #[inline]
    pub(crate) fn live(&self) -> usize {
        self.live
    }

    /// Cumulative fault events fired so far.
    #[inline]
    pub(crate) fn fired(&self) -> usize {
        self.next
    }

    /// Whether a relay can cross `{u, v}`: both endpoints live and
    /// present, edge neither cut nor awaiting arrival.
    #[inline]
    pub(crate) fn ok_edge(&self, u: usize, v: usize) -> bool {
        let key = (u.min(v) as u32, u.max(v) as u32);
        !self.dead[u]
            && !self.dead[v]
            && !self.dormant[u]
            && !self.dormant[v]
            && self.cut.binary_search(&key).is_err()
            && (self.inactive.is_empty() || self.inactive.binary_search(&key).is_err())
    }

    /// Whether tree `t` is still intact: every member alive and present
    /// (a dormant member cannot relay, so the tree heals only when it
    /// arrives), every tree edge usable, and every live present vertex
    /// still dominated (a member, or adjacent to one through a usable
    /// edge). Dormant vertices are exempt from domination until they
    /// arrive — at which point the repair pass re-checks and reassigns.
    pub(crate) fn tree_ok(
        &self,
        g: &Graph,
        t: usize,
        tree: &WeightedDomTree,
        member: &BitRows,
    ) -> bool {
        for &(u, v) in &tree.edges {
            if !self.ok_edge(u, v) {
                return false;
            }
        }
        if let Some(s) = tree.singleton {
            if self.dead[s] || self.dormant[s] {
                return false;
            }
        }
        'outer: for v in 0..g.n() {
            if self.dead[v] || self.dormant[v] || member.get(t, v) {
                continue;
            }
            for &u in g.neighbors(v) {
                if member.get(t, u) && self.ok_edge(v, u) {
                    continue 'outer;
                }
            }
            return false;
        }
        true
    }
}

/// Whether a message's in-flight assignment can still reach every
/// present vertex that lacks it — the repair passes' skip test.
///
/// "Some eligible holder has not relayed yet" is NOT enough: after an
/// arrival (or a cut behind an already-fired relay), the only members
/// adjacent to a needy vertex may all have relayed, while the unrelayed
/// ones sit elsewhere on the tree. So take the closure instead:
/// unrelayed eligible holders relay, and recipients that would requeue —
/// tree members, or everyone under a flood — relay in turn; every
/// missing present vertex must be reached.
///
/// A *dormant* unrelayed eligible holder (a sleeping origin) makes this
/// return `true` outright: its relay fires on arrival, and every arrival
/// fires a wave whose repair pass re-evaluates this exact question — so
/// waiting is safe and avoids reseed churn. Conversely dormant vertices
/// need no coverage yet, for the same reason.
pub(crate) fn assignment_still_covers(
    g: &Graph,
    ft: &FaultTracker,
    origin: usize,
    is_flood: bool,
    is_member: impl Fn(usize) -> bool,
    received: impl Fn(usize) -> bool,
    relayed: impl Fn(usize) -> bool,
) -> bool {
    let n = g.n();
    let mut relayer = vec![false; n];
    let mut queue: Vec<usize> = Vec::new();
    for (v, slot) in relayer.iter_mut().enumerate() {
        if ft.is_dead(v) || !received(v) || relayed(v) {
            continue;
        }
        if is_flood || is_member(v) || v == origin {
            if ft.is_dormant(v) {
                return true;
            }
            *slot = true;
            queue.push(v);
        }
    }
    let mut covered = vec![false; n];
    while let Some(v) = queue.pop() {
        for &u in g.neighbors(v) {
            if covered[u] || received(u) || !ft.ok_edge(v, u) {
                continue;
            }
            covered[u] = true;
            if (is_flood || is_member(u)) && !relayer[u] {
                relayer[u] = true;
                queue.push(u);
            }
        }
    }
    (0..n).all(|v| ft.is_dead(v) || ft.is_dormant(v) || received(v) || covered[v])
}

/// A message to gossip: its origin vertex.
pub type MessageOrigin = NodeId;

/// How a message picks the tree that will carry it.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum TreeChoice {
    /// Uniformly random tree, ignoring weights (the integral reading).
    #[default]
    Uniform,
    /// Weight-proportional: tree `τ` with probability `x_τ / Σx`, via
    /// the shared [`decomp_core::packing::TreeSampler`].
    Weighted,
}

/// How a vertex splits its one relay slot per round across trees.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Sharing {
    /// Relay the globally lowest-indexed eligible message (the
    /// historical schedule; ignores tree weights).
    #[default]
    Greedy,
    /// Deterministic weighted time-sharing: per-(vertex, tree) credit
    /// accumulators earn `x_τ` per round while tree `τ` has an eligible
    /// message pending; the highest-credit tree (ties broken toward the
    /// lowest tree id) relays its lowest-indexed message and is charged
    /// the round's total accrual — long-run, tree `τ` gets an
    /// `x_τ / Σx` share of the vertex's relay slots.
    Weighted,
}

/// The transport a gossip run schedules over: the paper's committed
/// trees, or random linear network coding.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Regime {
    /// Tree forwarding (the paper's Appendix-A schedules): each message
    /// commits to one tree per [`TreeChoice`], and vertices split their
    /// relay slot per [`Sharing`].
    #[default]
    Trees,
    /// Random linear network coding over GF(2⁸) ([`crate::rlnc`],
    /// beyond the paper): messages are grouped into generations of
    /// `generation_size` symbols and relays broadcast seeded-random
    /// combinations of their received rows — [`TreeChoice`] and
    /// [`Sharing`] are ignored. `seed` keys the coefficient stream
    /// (mixed with the run seed), so a `(run seed, regime)` pair pins
    /// the schedule bit-for-bit.
    Rlnc {
        /// Symbols per generation, in `1..=`[`crate::rlnc::MAX_GENERATION`]
        /// (the protocol layer further requires ≤ 48 so coefficients
        /// fit the V-CONGEST word budget).
        generation_size: usize,
        /// Coefficient-stream seed, mixed with the run seed.
        seed: u64,
    },
}

/// Schedule configuration for [`gossip_via_trees_with`], selecting among
/// the three regimes: the default (`Trees` with `Uniform` / `Greedy`)
/// reproduces the historical schedule bit for bit, RNG stream included;
/// [`GossipConfig::weighted`] is the fractional regime of Theorem 1.1;
/// [`GossipConfig::rlnc`] is the network-coded regime (beyond the
/// paper), where [`tree_choice`](Self::tree_choice) and
/// [`sharing`](Self::sharing) are ignored.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct GossipConfig {
    /// Message-to-tree assignment policy ([`Regime::Trees`] only).
    pub tree_choice: TreeChoice,
    /// Per-vertex relay-slot sharing policy ([`Regime::Trees`] only).
    pub sharing: Sharing,
    /// Transport regime: committed trees or network coding.
    pub regime: Regime,
}

impl GossipConfig {
    /// The fully fractional regime: weighted tree choice *and* weighted
    /// time-sharing (Theorem 1.1 / Corollary A.1 as proved).
    pub fn weighted() -> Self {
        GossipConfig {
            tree_choice: TreeChoice::Weighted,
            sharing: Sharing::Weighted,
            ..Default::default()
        }
    }

    /// The network-coded regime: relays send seeded-random GF(2⁸)
    /// combinations of their received generation instead of forwarding
    /// along committed trees ([`crate::rlnc`]).
    pub fn rlnc(generation_size: usize, seed: u64) -> Self {
        GossipConfig {
            regime: Regime::Rlnc {
                generation_size,
                seed,
            },
            ..Default::default()
        }
    }
}

/// Simulates the tree-parallel gossip schedule of Appendix A.
///
/// `origins[i]` holds message `i`. Each message is assigned to a uniformly
/// random tree of `packing`; vertices relay greedily (FIFO), one message
/// per vertex per round (V-CONGEST). Terminates when every message has
/// reached every vertex.
///
/// # Panics
/// Panics if the packing is empty, a tree fails to dominate, or the graph
/// is disconnected (the schedule would never complete).
pub fn gossip_via_trees(
    g: &Graph,
    packing: &DomTreePacking,
    origins: &[MessageOrigin],
    seed: u64,
) -> GossipReport {
    gossip_via_trees_with(g, packing, origins, seed, GossipConfig::default())
}

/// [`gossip_via_trees`] with an explicit [`GossipConfig`]: tree choice
/// (uniform vs. weight-proportional) and relay-slot sharing (greedy vs.
/// the weighted credit scheduler of the fractional regime). The default
/// config takes exactly the historical schedule, RNG stream included.
///
/// # Panics
/// Panics if the packing is empty (or, under [`TreeChoice::Weighted`],
/// carries no weight), a tree fails to dominate, or the graph is
/// disconnected.
pub fn gossip_via_trees_with(
    g: &Graph,
    packing: &DomTreePacking,
    origins: &[MessageOrigin],
    seed: u64,
    config: GossipConfig,
) -> GossipReport {
    assert!(packing.num_trees() > 0, "need at least one tree");
    assert!(
        decomp_graph::traversal::is_connected(g),
        "gossip requires a connected graph"
    );
    run_gossip(g, packing, origins, seed, config, None)
}

/// [`gossip_via_trees_with`] under a seeded [`FaultPlan`] (rounds in the
/// plan index the schedule's 1-based round counter; events at rounds 0
/// and 1 fire before the first relay). Dead vertices stop relaying and
/// no longer count toward delivery, cut edges drop relays in both
/// directions, and each fault round runs a repair pass that reassigns
/// stuck messages to surviving trees (or a flood fallback). Returns the
/// report with its [`degradation`](GossipReport::degradation) curve
/// filled in; input validation failures come back as [`GossipError`]s
/// instead of the panics of the fault-free entry points.
///
/// The *initial* graph must be connected; completion of every
/// non-[`lost`](GossipReport::lost_messages) message further requires
/// the plan to leave the survivors connected in every prefix (e.g.
/// `f < k` deletions against a `k`-connected graph) — a plan that
/// disconnects the survivors trips the schedule's stall assertion.
pub fn gossip_via_trees_faulty(
    g: &Graph,
    packing: &DomTreePacking,
    origins: &[MessageOrigin],
    seed: u64,
    config: GossipConfig,
    plan: &FaultPlan,
) -> Result<GossipReport, GossipError> {
    if packing.num_trees() == 0 {
        return Err(GossipError::EmptyPacking);
    }
    if !decomp_graph::traversal::is_connected(g) {
        return Err(GossipError::Disconnected);
    }
    if config.regime == Regime::Trees
        && config.tree_choice == TreeChoice::Weighted
        && packing.try_sampler().is_none()
    {
        return Err(GossipError::ZeroWeightPacking);
    }
    Ok(run_gossip(g, packing, origins, seed, config, Some(plan)))
}

/// Shared body of the gossip entry points: membership bitsets, tree
/// assignment, schedule dispatch. Inputs are pre-validated (panicking
/// asserts in the infallible entries, [`GossipError`]s in the faulty
/// one — except the weighted-sampler panic, kept here so
/// [`gossip_via_trees_with`] preserves its historical message).
fn run_gossip(
    g: &Graph,
    packing: &DomTreePacking,
    origins: &[MessageOrigin],
    seed: u64,
    config: GossipConfig,
    faults: Option<&FaultPlan>,
) -> GossipReport {
    let n = g.n();
    let num_trees = packing.num_trees();

    // Per-tree membership, 1 bit per vertex.
    let mut member = BitRows::new(num_trees, n);
    let mut max_diam = 0usize;
    for (t, tree) in packing.trees.iter().enumerate() {
        for &(u, v) in &tree.edges {
            member.set(t, u);
            member.set(t, v);
        }
        if let Some(s) = tree.singleton {
            member.set(t, s);
        }
        max_diam = max_diam.max(tree.diameter(n));
    }

    let nmsg = origins.len();
    let (outcome, per_tree_load) = match config.regime {
        Regime::Trees => {
            // Message-to-tree assignment draws first, preserving the
            // historical RNG stream bit for bit.
            let mut rng = StdRng::seed_from_u64(seed);
            let mut tree_of: Vec<usize> = match config.tree_choice {
                TreeChoice::Uniform => (0..nmsg).map(|_| rng.gen_range(0..num_trees)).collect(),
                TreeChoice::Weighted => {
                    let sampler = packing.try_sampler().expect("packing must carry weight");
                    (0..nmsg).map(|_| sampler.sample(&mut rng)).collect()
                }
            };
            let mut per_tree_load = vec![0usize; num_trees];
            for &t in &tree_of {
                per_tree_load[t] += 1;
            }
            let outcome = match config.sharing {
                Sharing::Greedy => {
                    greedy_schedule(g, packing, &member, &mut tree_of, origins, faults)
                }
                Sharing::Weighted => {
                    weighted_schedule(g, packing, &member, &mut tree_of, origins, faults)
                }
            };
            (outcome, per_tree_load)
        }
        Regime::Rlnc {
            generation_size,
            seed: coeff_seed,
        } => (
            crate::rlnc::rlnc_schedule(
                g,
                packing,
                &member,
                origins,
                seed,
                generation_size,
                coeff_seed,
                faults,
            ),
            // Coded packets ride no tree: the load column is all zeros.
            vec![0usize; num_trees],
        ),
    };
    GossipReport {
        rounds: outcome.rounds,
        num_messages: nmsg,
        per_tree_load,
        max_tree_diameter: max_diam,
        peak_state_words: outcome.peak_state_words,
        schedule_digest: outcome.schedule_digest,
        degradation: outcome.degradation,
        lost_messages: outcome.lost_messages,
        wasted_bandwidth: outcome.wasted_bandwidth,
        repair_events: outcome.repair_events,
        flood_rounds: outcome.flood_rounds,
    }
}

/// What a schedule simulation hands back to [`run_gossip`].
pub(crate) struct ScheduleOutcome {
    pub(crate) rounds: usize,
    pub(crate) schedule_digest: u64,
    pub(crate) peak_state_words: usize,
    pub(crate) degradation: Vec<DegradationSample>,
    pub(crate) lost_messages: usize,
    pub(crate) wasted_bandwidth: usize,
    pub(crate) repair_events: usize,
    pub(crate) flood_rounds: usize,
}

/// The historical greedy schedule: each vertex relays its lowest-indexed
/// eligible message each round.
fn greedy_schedule(
    g: &Graph,
    packing: &DomTreePacking,
    member: &BitRows,
    tree_of: &mut [usize],
    origins: &[MessageOrigin],
    faults: Option<&FaultPlan>,
) -> ScheduleOutcome {
    let n = g.n();
    let nmsg = origins.len();
    // received: one bit row per message. A vertex's pending relays live
    // in a min-heap over message indices: the greedy schedule relays the
    // lowest-indexed eligible message, exactly as the historical
    // `O(nmsg · n)` table scan chose it. Fault-free, a (message, vertex)
    // pair enters a heap at most once (on the vertex's 0→1 reception,
    // members only, plus the origin hand-off), so popping doubles as the
    // `relayed` table; the fault repair pass reseeds holders, so under a
    // plan relays are tracked explicitly in the `relayed` bitset.
    let mut received = BitRows::new(nmsg, n);
    let mut remaining: Vec<usize> = vec![n - 1; nmsg];
    let mut pending: Vec<BinaryHeap<Reverse<u32>>> = (0..n).map(|_| BinaryHeap::new()).collect();
    let mut worklist: Vec<u32> = Vec::new();
    let mut queued: Vec<bool> = vec![false; n];
    let mut incomplete = 0usize;
    for (m, &origin) in origins.iter().enumerate() {
        received.set(m, origin);
        if remaining[m] > 0 {
            incomplete += 1;
        }
        pending[origin].push(Reverse(m as u32));
        if !queued[origin] {
            queued[origin] = true;
            worklist.push(origin as u32);
        }
    }
    let mut pending_entries = nmsg;
    let mut peak_pending = pending_entries;

    // Fault-path state; `None` everywhere on the (digest-pinned)
    // fault-free path.
    let mut tracker = faults.map(|p| FaultTracker::new(p, n));
    let mut relayed = faults.map(|_| BitRows::new(nmsg, n));
    let mut degradation: Vec<DegradationSample> = Vec::new();
    let mut lost_messages = 0usize;
    let mut wasted_bandwidth = 0usize;
    let mut repair_events = 0usize;
    let mut flood_rounds = 0usize;
    let mut newly_dead: Vec<usize> = Vec::new();

    let mut rounds = 0usize;
    let mut schedule_digest = 0u64;
    let round_limit = 64 * (n + nmsg) + 1024;
    let mut frontier: Vec<u32> = Vec::new();
    let mut relays: Vec<(u32, u32)> = Vec::new();
    while incomplete > 0 {
        rounds += 1;
        assert!(
            rounds <= round_limit,
            "gossip schedule failed to complete within {round_limit} rounds"
        );
        // Phase 0 — faults scheduled at this round fire before any
        // relay choice is made.
        if let Some(ft) = tracker.as_mut() {
            newly_dead.clear();
            if ft.advance(rounds, &mut newly_dead) {
                let relayed = relayed.as_mut().expect("fault path tracks relays");
                // Dead vertices drop their relay queues and no longer
                // count toward delivery.
                for &v in &newly_dead {
                    pending_entries -= pending[v].len();
                    pending[v].clear();
                }
                for (m, rem) in remaining.iter_mut().enumerate() {
                    if *rem == 0 {
                        continue;
                    }
                    for &v in &newly_dead {
                        if !received.get(m, v) {
                            *rem -= 1;
                            if *rem == 0 {
                                incomplete -= 1;
                            }
                        }
                    }
                }
                // Repair pass: any incomplete message without a live,
                // unrelayed, relay-eligible holder on an intact tree is
                // moved to the lowest-id surviving tree holding it —
                // or floods if no tree can carry it — and its eligible
                // holders are reseeded (allowed to relay again). The
                // same pass serves arrivals: a message complete among
                // the old population has every holder relayed, so the
                // arrival of a still-needy vertex reseeds it onto a
                // tree that dominates the newcomer.
                let alive: Vec<bool> = packing
                    .trees
                    .iter()
                    .enumerate()
                    .map(|(t, tree)| ft.tree_ok(g, t, tree, member))
                    .collect();
                let mut reassigned = 0usize;
                let mut lost = 0usize;
                for m in 0..nmsg {
                    if remaining[m] == 0 {
                        continue;
                    }
                    // Dormant holders count (a dormant origin's message
                    // is not lost — it arrives with the vertex); their
                    // reseeded entries wait in the heap until arrival.
                    let holders: Vec<usize> = (0..n)
                        .filter(|&v| !ft.is_dead(v) && received.get(m, v))
                        .collect();
                    if holders.is_empty() {
                        remaining[m] = 0;
                        incomplete -= 1;
                        lost += 1;
                        continue;
                    }
                    let eligible =
                        |t: usize, v: usize| t == FLOOD || member.get(t, v) || v == origins[m];
                    let cur = tree_of[m];
                    if (cur == FLOOD || alive[cur])
                        && assignment_still_covers(
                            g,
                            ft,
                            origins[m],
                            cur == FLOOD,
                            |v| cur != FLOOD && member.get(cur, v),
                            |v| received.get(m, v),
                            |v| relayed.get(m, v),
                        )
                    {
                        continue;
                    }
                    let target = (0..packing.num_trees())
                        .find(|&t| alive[t] && holders.iter().any(|&v| eligible(t, v)))
                        .unwrap_or(FLOOD);
                    tree_of[m] = target;
                    reassigned += 1;
                    for &v in &holders {
                        if eligible(target, v) {
                            relayed.clear(m, v);
                            pending[v].push(Reverse(m as u32));
                            pending_entries += 1;
                            if !queued[v] {
                                queued[v] = true;
                                worklist.push(v as u32);
                            }
                        }
                    }
                }
                lost_messages += lost;
                repair_events += reassigned;
                // Arrivals whose pending relays were seeded while they
                // slept (a dormant origin, or a reseed above) rejoin
                // the worklist now.
                for &v in ft.woke() {
                    if !pending[v].is_empty() && !queued[v] {
                        queued[v] = true;
                        worklist.push(v as u32);
                    }
                }
                degradation.push(DegradationSample {
                    round: rounds,
                    faults_fired: ft.next,
                    live_vertices: ft.live,
                    surviving_trees: alive.iter().filter(|&&a| a).count(),
                    incomplete_messages: incomplete,
                    reassigned_messages: reassigned,
                    lost_messages: lost,
                });
                if incomplete == 0 {
                    rounds -= 1;
                    break;
                }
            }
        }
        // Phase 1 — choices, from the state at round start: each active
        // vertex pops its lowest-indexed pending message, lazily
        // discarding messages that completed in earlier rounds (the old
        // scan skipped them the same way) and, on the fault path,
        // entries this vertex already relayed (reseed duplicates).
        // Dormant vertices sit out (their heaps keep the entries).
        std::mem::swap(&mut frontier, &mut worklist);
        relays.clear();
        for &v in &frontier {
            queued[v as usize] = false;
            if tracker
                .as_ref()
                .is_some_and(|t| t.is_dead(v as usize) || t.is_dormant(v as usize))
            {
                continue;
            }
            while let Some(&Reverse(m)) = pending[v as usize].peek() {
                pending[v as usize].pop();
                pending_entries -= 1;
                if remaining[m as usize] > 0
                    && relayed
                        .as_ref()
                        .is_none_or(|r| !r.get(m as usize, v as usize))
                {
                    relays.push((v, m));
                    break;
                }
            }
        }
        // Phase 2 — apply all relays; receptions push next-round work.
        let mut flooded = false;
        for &(v, m) in &relays {
            schedule_digest =
                schedule_digest.wrapping_add(relay_hash(rounds, v as usize, m as usize));
            if let Some(r) = relayed.as_mut() {
                r.set(m as usize, v as usize);
            }
            let tree = tree_of[m as usize];
            flooded |= tree == FLOOD;
            for &u in g.neighbors(v as usize) {
                if tracker.as_ref().is_some_and(|t| !t.ok_edge(v as usize, u)) {
                    continue;
                }
                if !received.get(m as usize, u) {
                    received.set(m as usize, u);
                    remaining[m as usize] -= 1;
                    if remaining[m as usize] == 0 {
                        incomplete -= 1;
                    }
                    if tree == FLOOD || member.get(tree, u) {
                        pending[u].push(Reverse(m));
                        pending_entries += 1;
                        if !queued[u] {
                            queued[u] = true;
                            worklist.push(u as u32);
                        }
                    }
                } else {
                    wasted_bandwidth += 1;
                }
            }
        }
        flood_rounds += flooded as usize;
        peak_pending = peak_pending.max(pending_entries);
        // Vertices that still hold pending relays stay on the frontier.
        for &v in &frontier {
            if !pending[v as usize].is_empty() && !queued[v as usize] {
                queued[v as usize] = true;
                worklist.push(v);
            }
        }
        frontier.clear();
        if relays.is_empty() && incomplete > 0 {
            // The only legitimate idle state is awaiting a scheduled
            // arrival (e.g. every present vertex is served and the
            // stragglers have not arrived yet). Idle rounds carry no
            // relays, so jumping to the eve of the next event leaves
            // the digest and round count exactly as if we had spun.
            let Some(r) = tracker.as_ref().and_then(|t| t.next_event_round()) else {
                panic!(
                    "gossip schedule stalled: a message can no longer make progress \
                     (is some tree not dominating, or did faults disconnect the survivors?)"
                );
            };
            rounds = rounds.max(r.saturating_sub(1));
        }
    }
    // Heap entries are u32s: count them in 64-bit words (2 per word).
    let peak_state_words = received.words() + member.words() + peak_pending.div_ceil(2);
    ScheduleOutcome {
        rounds,
        schedule_digest,
        peak_state_words,
        degradation,
        lost_messages,
        wasted_bandwidth,
        repair_events,
        flood_rounds,
    }
}

/// One (vertex, tree) lane of the weighted credit scheduler: the trees
/// through a vertex each hold their own min-heap of pending messages and
/// a credit accumulator. Lanes are kept sorted by tree id so credit
/// accrual and the arg-max walk visit trees in ascending-id order — the
/// float-op order the reference oracle reproduces exactly.
struct TreeLane {
    tree: u32,
    credit: f64,
    heap: BinaryHeap<Reverse<u32>>,
}

/// The weighted time-sharing schedule of the fractional regime
/// ([`Sharing::Weighted`]): per round, every tree with an eligible
/// pending message at a vertex earns `x_τ` credit; the highest-credit
/// tree (ties to the lowest tree id) relays its lowest-indexed pending
/// message and is charged the round's total accrual across the vertex's
/// active trees. A lane whose heap has drained *and* whose tree has no
/// incomplete message left anywhere retires — nothing can ever refill
/// it, so keeping it would only let a finished tree's credit shadow
/// live ones (and inflate the state peak).
fn weighted_schedule(
    g: &Graph,
    packing: &DomTreePacking,
    member: &BitRows,
    tree_of: &mut [usize],
    origins: &[MessageOrigin],
    faults: Option<&FaultPlan>,
) -> ScheduleOutcome {
    let n = g.n();
    let nmsg = origins.len();
    let num_trees = packing.num_trees();
    let weight: Vec<f64> = packing.trees.iter().map(|t| t.weight).collect();
    // Slot per tree plus one for the flood fallback.
    let tid = |t: usize| if t == FLOOD { num_trees } else { t };
    let lane_key = |t: usize| if t == FLOOD { FLOOD_LANE } else { t as u32 };
    let mut tree_incomplete = vec![0usize; num_trees + 1];
    let mut received = BitRows::new(nmsg, n);
    let mut remaining: Vec<usize> = vec![n - 1; nmsg];
    let mut lanes: Vec<Vec<TreeLane>> = (0..n).map(|_| Vec::new()).collect();
    let mut live_lanes = 0usize;
    let mut worklist: Vec<u32> = Vec::new();
    let mut queued: Vec<bool> = vec![false; n];
    let mut incomplete = 0usize;
    let mut pending_entries = 0usize;

    // Pushes message `m` into vertex `v`'s lane for its tree, creating
    // the lane on first use (lanes stay sorted by tree id; the flood
    // lane's key sorts last).
    fn push_pending(
        lanes: &mut [Vec<TreeLane>],
        live_lanes: &mut usize,
        v: usize,
        tree: u32,
        m: u32,
    ) {
        let vl = &mut lanes[v];
        let i = match vl.binary_search_by_key(&tree, |l| l.tree) {
            Ok(i) => i,
            Err(i) => {
                vl.insert(
                    i,
                    TreeLane {
                        tree,
                        credit: 0.0,
                        heap: BinaryHeap::new(),
                    },
                );
                *live_lanes += 1;
                i
            }
        };
        vl[i].heap.push(Reverse(m));
    }

    for (m, &origin) in origins.iter().enumerate() {
        received.set(m, origin);
        if remaining[m] > 0 {
            incomplete += 1;
            tree_incomplete[tid(tree_of[m])] += 1;
        }
        push_pending(
            &mut lanes,
            &mut live_lanes,
            origin,
            tree_of[m] as u32,
            m as u32,
        );
        pending_entries += 1;
        if !queued[origin] {
            queued[origin] = true;
            worklist.push(origin as u32);
        }
    }
    let mut peak_pending = pending_entries;
    let mut peak_lanes = live_lanes;

    // Fault-path state; `None` everywhere on the (digest-pinned)
    // fault-free path.
    let mut tracker = faults.map(|p| FaultTracker::new(p, n));
    let mut relayed = faults.map(|_| BitRows::new(nmsg, n));
    let mut degradation: Vec<DegradationSample> = Vec::new();
    let mut lost_messages = 0usize;
    let mut wasted_bandwidth = 0usize;
    let mut repair_events = 0usize;
    let mut flood_rounds = 0usize;
    let mut newly_dead: Vec<usize> = Vec::new();

    let mut rounds = 0usize;
    let mut schedule_digest = 0u64;
    let round_limit = 64 * (n + nmsg) + 1024;
    let mut frontier: Vec<u32> = Vec::new();
    let mut relays: Vec<(u32, u32)> = Vec::new();
    while incomplete > 0 {
        rounds += 1;
        assert!(
            rounds <= round_limit,
            "gossip schedule failed to complete within {round_limit} rounds"
        );
        // Phase 0 — faults scheduled at this round fire before any
        // relay choice is made (mirrors `greedy_schedule`).
        if let Some(ft) = tracker.as_mut() {
            newly_dead.clear();
            if ft.advance(rounds, &mut newly_dead) {
                let relayed = relayed.as_mut().expect("fault path tracks relays");
                for &v in &newly_dead {
                    for l in &lanes[v] {
                        pending_entries -= l.heap.len();
                    }
                    live_lanes -= lanes[v].len();
                    lanes[v].clear();
                }
                for m in 0..nmsg {
                    if remaining[m] == 0 {
                        continue;
                    }
                    for &v in &newly_dead {
                        if !received.get(m, v) {
                            remaining[m] -= 1;
                            if remaining[m] == 0 {
                                incomplete -= 1;
                                tree_incomplete[tid(tree_of[m])] -= 1;
                            }
                        }
                    }
                }
                let alive: Vec<bool> = packing
                    .trees
                    .iter()
                    .enumerate()
                    .map(|(t, tree)| ft.tree_ok(g, t, tree, member))
                    .collect();
                let mut reassigned = 0usize;
                let mut lost = 0usize;
                for m in 0..nmsg {
                    if remaining[m] == 0 {
                        continue;
                    }
                    let holders: Vec<usize> = (0..n)
                        .filter(|&v| !ft.is_dead(v) && received.get(m, v))
                        .collect();
                    if holders.is_empty() {
                        remaining[m] = 0;
                        incomplete -= 1;
                        tree_incomplete[tid(tree_of[m])] -= 1;
                        lost += 1;
                        continue;
                    }
                    let eligible =
                        |t: usize, v: usize| t == FLOOD || member.get(t, v) || v == origins[m];
                    let cur = tree_of[m];
                    if (cur == FLOOD || alive[cur])
                        && assignment_still_covers(
                            g,
                            ft,
                            origins[m],
                            cur == FLOOD,
                            |v| cur != FLOOD && member.get(cur, v),
                            |v| received.get(m, v),
                            |v| relayed.get(m, v),
                        )
                    {
                        continue;
                    }
                    let target = (0..num_trees)
                        .find(|&t| alive[t] && holders.iter().any(|&v| eligible(t, v)))
                        .unwrap_or(FLOOD);
                    tree_incomplete[tid(cur)] -= 1;
                    tree_incomplete[tid(target)] += 1;
                    tree_of[m] = target;
                    reassigned += 1;
                    for &v in &holders {
                        if eligible(target, v) {
                            relayed.clear(m, v);
                            push_pending(
                                &mut lanes,
                                &mut live_lanes,
                                v,
                                lane_key(target),
                                m as u32,
                            );
                            pending_entries += 1;
                            if !queued[v] {
                                queued[v] = true;
                                worklist.push(v as u32);
                            }
                        }
                    }
                }
                lost_messages += lost;
                repair_events += reassigned;
                // Arrivals with lane entries seeded while they slept
                // rejoin the worklist now (mirrors `greedy_schedule`).
                for &v in ft.woke() {
                    if !queued[v] && lanes[v].iter().any(|l| !l.heap.is_empty()) {
                        queued[v] = true;
                        worklist.push(v as u32);
                    }
                }
                degradation.push(DegradationSample {
                    round: rounds,
                    faults_fired: ft.next,
                    live_vertices: ft.live,
                    surviving_trees: alive.iter().filter(|&&a| a).count(),
                    incomplete_messages: incomplete,
                    reassigned_messages: reassigned,
                    lost_messages: lost,
                });
                if incomplete == 0 {
                    rounds -= 1;
                    break;
                }
            }
        }
        // Phase 1 — choices, from the state at round start: every active
        // tree at a vertex (one with an eligible pending message, after
        // lazily discarding messages that completed in earlier rounds —
        // and, on the fault path, entries this vertex already relayed)
        // earns its weight in credit, in ascending tree-id order; the
        // highest-credit active tree wins the relay slot and is charged
        // the round's total accrual. Drained lanes of finished trees
        // retire here. Dormant vertices sit out until their arrival.
        std::mem::swap(&mut frontier, &mut worklist);
        relays.clear();
        for &v in &frontier {
            queued[v as usize] = false;
            if tracker
                .as_ref()
                .is_some_and(|t| t.is_dead(v as usize) || t.is_dormant(v as usize))
            {
                continue;
            }
            let vl = &mut lanes[v as usize];
            vl.retain_mut(|l| {
                while let Some(&Reverse(m)) = l.heap.peek() {
                    let stale = remaining[m as usize] == 0
                        || relayed
                            .as_ref()
                            .is_some_and(|r| r.get(m as usize, v as usize));
                    if !stale {
                        break;
                    }
                    l.heap.pop();
                    pending_entries -= 1;
                }
                let t = if l.tree == FLOOD_LANE {
                    num_trees
                } else {
                    l.tree as usize
                };
                if l.heap.is_empty() && tree_incomplete[t] == 0 {
                    live_lanes -= 1;
                    false
                } else {
                    true
                }
            });
            let mut accrued = 0.0f64;
            let mut best: Option<usize> = None;
            for i in 0..vl.len() {
                if vl[i].heap.is_empty() {
                    continue;
                }
                let w = if vl[i].tree == FLOOD_LANE {
                    1.0
                } else {
                    weight[vl[i].tree as usize]
                };
                vl[i].credit += w;
                accrued += w;
                best = match best {
                    Some(b) if vl[i].credit <= vl[b].credit => Some(b),
                    _ => Some(i),
                };
            }
            if let Some(b) = best {
                vl[b].credit -= accrued;
                let Reverse(m) = vl[b].heap.pop().expect("active lane has a message");
                pending_entries -= 1;
                relays.push((v, m));
            }
        }
        // Phase 2 — apply all relays; receptions push next-round work.
        let mut flooded = false;
        for &(v, m) in &relays {
            schedule_digest =
                schedule_digest.wrapping_add(relay_hash(rounds, v as usize, m as usize));
            if let Some(r) = relayed.as_mut() {
                r.set(m as usize, v as usize);
            }
            let tree = tree_of[m as usize];
            flooded |= tree == FLOOD;
            for &u in g.neighbors(v as usize) {
                if tracker.as_ref().is_some_and(|t| !t.ok_edge(v as usize, u)) {
                    continue;
                }
                if !received.get(m as usize, u) {
                    received.set(m as usize, u);
                    remaining[m as usize] -= 1;
                    if remaining[m as usize] == 0 {
                        incomplete -= 1;
                        tree_incomplete[tid(tree)] -= 1;
                    }
                    if tree == FLOOD || member.get(tree, u) {
                        push_pending(&mut lanes, &mut live_lanes, u, lane_key(tree), m);
                        pending_entries += 1;
                        if !queued[u] {
                            queued[u] = true;
                            worklist.push(u as u32);
                        }
                    }
                } else {
                    wasted_bandwidth += 1;
                }
            }
        }
        flood_rounds += flooded as usize;
        peak_pending = peak_pending.max(pending_entries);
        peak_lanes = peak_lanes.max(live_lanes);
        // Vertices that still hold pending relays stay on the frontier.
        for &v in &frontier {
            if !queued[v as usize] && lanes[v as usize].iter().any(|l| !l.heap.is_empty()) {
                queued[v as usize] = true;
                worklist.push(v);
            }
        }
        frontier.clear();
        if relays.is_empty() && incomplete > 0 {
            // Idle only while a scheduled arrival is still due; jump to
            // its eve (digest-neutral, mirrors `greedy_schedule`).
            let Some(r) = tracker.as_ref().and_then(|t| t.next_event_round()) else {
                panic!(
                    "gossip schedule stalled: a message can no longer make progress \
                     (is some tree not dominating, or did faults disconnect the survivors?)"
                );
            };
            rounds = rounds.max(r.saturating_sub(1));
        }
    }
    // Heap entries are u32s (2 per word); a lane adds a tree id, a
    // credit, and a heap header (~5 words). Lanes retire as their trees
    // finish, so the lane term is the concurrent peak, not the total
    // ever created.
    let peak_state_words =
        received.words() + member.words() + peak_pending.div_ceil(2) + 5 * peak_lanes;
    ScheduleOutcome {
        rounds,
        schedule_digest,
        peak_state_words,
        degradation,
        lost_messages,
        wasted_bandwidth,
        repair_events,
        flood_rounds,
    }
}

/// Baseline: the same workload over a single BFS spanning tree (the
/// pre-decomposition state of the art the paper contrasts with).
pub fn gossip_single_tree_baseline(
    g: &Graph,
    origins: &[MessageOrigin],
    seed: u64,
) -> GossipReport {
    let bfs = decomp_graph::traversal::bfs(g, 0);
    let edges: Vec<(NodeId, NodeId)> = bfs.tree_edges();
    let packing = DomTreePacking {
        trees: vec![decomp_core::packing::WeightedDomTree {
            id: 0,
            weight: 1.0,
            edges,
            singleton: if g.n() == 1 { Some(0) } else { None },
        }],
    };
    gossip_via_trees(g, &packing, origins, seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use decomp_congest::fault::ScheduledFault;
    use decomp_core::cds::centralized::{cds_packing, CdsPackingConfig};
    use decomp_core::cds::tree_extract::to_dom_tree_packing;
    use decomp_graph::generators;

    fn packing_for(g: &Graph, k: usize, seed: u64) -> DomTreePacking {
        let p = cds_packing(g, &CdsPackingConfig::with_known_k(k, seed));
        let ex = to_dom_tree_packing(g, &p);
        assert!(ex.invalid_classes.is_empty());
        ex.packing
    }

    #[test]
    fn all_to_all_on_harary() {
        let g = generators::harary(12, 48);
        let packing = packing_for(&g, 12, 1);
        let origins: Vec<usize> = (0..g.n()).collect(); // one message per node
        let r = gossip_via_trees(&g, &packing, &origins, 9);
        assert_eq!(r.num_messages, 48);
        assert!(r.rounds > 0);
        let total: usize = r.per_tree_load.iter().sum();
        assert_eq!(total, 48);
    }

    /// A hand-built packing of genuinely vertex-disjoint dominating trees:
    /// in K_{t, n−t}, each pair (left_i, right_i) forms a 2-vertex
    /// dominating tree, and distinct pairs are disjoint. This is the
    /// regime Corollary 1.4 speaks about (constructed packings only become
    /// disjoint once k ≫ log n, which the bench harness exercises).
    fn disjoint_pair_packing(t: usize, n: usize) -> (Graph, DomTreePacking) {
        let g = generators::complete_bipartite(t, n - t);
        let trees = (0..t)
            .map(|i| decomp_core::packing::WeightedDomTree {
                id: i,
                weight: 1.0,
                edges: vec![(i, t + i)],
                singleton: None,
            })
            .collect();
        let packing = DomTreePacking { trees };
        packing.validate(&g, 1e-9).unwrap();
        (g, packing)
    }

    #[test]
    fn disjoint_trees_beat_single_tree() {
        let (g, packing) = disjoint_pair_packing(8, 64);
        let origins: Vec<usize> = (0..4 * g.n()).map(|i| i % g.n()).collect();
        let multi = gossip_via_trees(&g, &packing, &origins, 5);
        let single = gossip_single_tree_baseline(&g, &origins, 5);
        assert!(
            2 * multi.rounds < single.rounds,
            "8 disjoint trees ({}) must far outpace the single tree ({})",
            multi.rounds,
            single.rounds
        );
    }

    #[test]
    fn constructed_packing_not_much_worse_than_single_tree() {
        // At small scales the constructed classes overlap heavily, so no
        // speedup is expected — but the schedule must stay comparable.
        let g = generators::harary(16, 64);
        let packing = packing_for(&g, 16, 3);
        assert!(packing.num_trees() >= 4);
        let origins: Vec<usize> = (0..2 * g.n()).map(|i| i % g.n()).collect();
        let multi = gossip_via_trees(&g, &packing, &origins, 5);
        let single = gossip_single_tree_baseline(&g, &origins, 5);
        assert!(
            multi.rounds <= 2 * single.rounds + 10,
            "packing schedule ({}) should stay comparable to single tree ({})",
            multi.rounds,
            single.rounds
        );
    }

    #[test]
    fn single_message_reaches_everyone() {
        let g = generators::cycle(10);
        let packing = packing_for(&g, 2, 0);
        let r = gossip_via_trees(&g, &packing, &[3], 1);
        assert_eq!(r.num_messages, 1);
        // one message over a cycle: roughly diameter rounds
        assert!(r.rounds <= 3 * 10);
    }

    #[test]
    fn empty_workload() {
        let g = generators::cycle(5);
        let packing = packing_for(&g, 2, 0);
        let r = gossip_via_trees(&g, &packing, &[], 0);
        assert_eq!(r.rounds, 0);
        assert_eq!(r.num_messages, 0);
    }

    #[test]
    fn corollary_a1_shape() {
        // Rounds ≈ O~(η + (N + n)/k): with N = n messages and k large,
        // rounds should be well below the naive N + D bound.
        let g = generators::harary(16, 64);
        let packing = packing_for(&g, 16, 7);
        let origins: Vec<usize> = (0..g.n()).collect();
        let r = gossip_via_trees(&g, &packing, &origins, 3);
        let naive = g.n() + decomp_graph::traversal::diameter(&g).unwrap();
        assert!(
            r.rounds < 4 * naive,
            "rounds {} should be comparable to or better than naive {}",
            r.rounds,
            naive
        );
    }

    #[test]
    #[should_panic(expected = "at least one tree")]
    fn rejects_empty_packing() {
        let g = generators::cycle(4);
        gossip_via_trees(&g, &DomTreePacking::default(), &[0], 0);
    }

    /// The historical `O(nmsg · n)` schedule loop, kept verbatim as the
    /// oracle for the bitset/worklist rewrite: per round it scans every
    /// (message, vertex) pair and lets each vertex relay its
    /// lowest-indexed eligible message. Returns, per message, the round
    /// each vertex received it in (0 = held at start) — a complete
    /// trace of the schedule, not just its length.
    fn reference_schedule(
        g: &Graph,
        packing: &DomTreePacking,
        origins: &[usize],
        seed: u64,
    ) -> (usize, u64, Vec<Vec<usize>>) {
        let n = g.n();
        let mut rng = StdRng::seed_from_u64(seed);
        let num_trees = packing.num_trees();
        let mut tree_member: Vec<Vec<bool>> = Vec::with_capacity(num_trees);
        for t in &packing.trees {
            let mut member = vec![false; n];
            for &(u, v) in &t.edges {
                member[u] = true;
                member[v] = true;
            }
            if let Some(s) = t.singleton {
                member[s] = true;
            }
            tree_member.push(member);
        }
        let nmsg = origins.len();
        let tree_of: Vec<usize> = (0..nmsg).map(|_| rng.gen_range(0..num_trees)).collect();
        let mut received: Vec<Vec<bool>> = (0..nmsg)
            .map(|m| {
                let mut r = vec![false; n];
                r[origins[m]] = true;
                r
            })
            .collect();
        let mut recv_round: Vec<Vec<usize>> = (0..nmsg).map(|_| vec![usize::MAX; n]).collect();
        for m in 0..nmsg {
            recv_round[m][origins[m]] = 0;
        }
        let mut relayed: Vec<Vec<bool>> = vec![vec![false; n]; nmsg];
        let mut remaining: Vec<usize> = (0..nmsg).map(|_| n - 1).collect();
        let mut incomplete = remaining.iter().filter(|&&r| r > 0).count();
        let mut rounds = 0usize;
        let mut digest = 0u64;
        while incomplete > 0 {
            rounds += 1;
            let mut chosen: Vec<Option<usize>> = vec![None; n];
            for m in 0..nmsg {
                if remaining[m] == 0 {
                    continue;
                }
                let tree = tree_of[m];
                for v in 0..n {
                    if chosen[v].is_none()
                        && received[m][v]
                        && !relayed[m][v]
                        && (tree_member[tree][v] || v == origins[m])
                    {
                        chosen[v] = Some(m);
                    }
                }
            }
            for v in 0..n {
                if let Some(m) = chosen[v] {
                    relayed[m][v] = true;
                    digest = digest.wrapping_add(relay_hash(rounds, v, m));
                    for &u in g.neighbors(v) {
                        if !received[m][u] {
                            received[m][u] = true;
                            recv_round[m][u] = rounds;
                            remaining[m] -= 1;
                            if remaining[m] == 0 {
                                incomplete -= 1;
                            }
                        }
                    }
                }
            }
        }
        (rounds, digest, recv_round)
    }

    /// The weighted credit scheduler, reimplemented as a naive
    /// `O(nmsg · n)` scan — the oracle pinning [`Sharing::Weighted`]
    /// exactly as `reference_schedule` pins the greedy default. Per
    /// round and vertex it walks *all* trees in ascending-id order,
    /// accrues `x_τ` for each tree with an eligible message, and serves
    /// the highest-credit tree (ties to the lowest id), charging it the
    /// round's total accrual. Returns the same
    /// `(rounds, digest, reception trace)` triple.
    fn reference_weighted_schedule(
        g: &Graph,
        packing: &DomTreePacking,
        origins: &[usize],
        seed: u64,
        tree_choice: TreeChoice,
    ) -> (usize, u64, Vec<Vec<usize>>) {
        let n = g.n();
        let mut rng = StdRng::seed_from_u64(seed);
        let num_trees = packing.num_trees();
        let weight: Vec<f64> = packing.trees.iter().map(|t| t.weight).collect();
        let mut tree_member: Vec<Vec<bool>> = Vec::with_capacity(num_trees);
        for t in &packing.trees {
            let mut member = vec![false; n];
            for &(u, v) in &t.edges {
                member[u] = true;
                member[v] = true;
            }
            if let Some(s) = t.singleton {
                member[s] = true;
            }
            tree_member.push(member);
        }
        let nmsg = origins.len();
        let tree_of: Vec<usize> = match tree_choice {
            TreeChoice::Uniform => (0..nmsg).map(|_| rng.gen_range(0..num_trees)).collect(),
            TreeChoice::Weighted => {
                let sampler = packing.sampler();
                (0..nmsg).map(|_| sampler.sample(&mut rng)).collect()
            }
        };
        let mut received: Vec<Vec<bool>> = (0..nmsg)
            .map(|m| {
                let mut r = vec![false; n];
                r[origins[m]] = true;
                r
            })
            .collect();
        let mut recv_round: Vec<Vec<usize>> = (0..nmsg).map(|_| vec![usize::MAX; n]).collect();
        for m in 0..nmsg {
            recv_round[m][origins[m]] = 0;
        }
        let mut relayed: Vec<Vec<bool>> = vec![vec![false; n]; nmsg];
        let mut remaining: Vec<usize> = (0..nmsg).map(|_| n - 1).collect();
        let mut incomplete = remaining.iter().filter(|&&r| r > 0).count();
        let mut credit: Vec<Vec<f64>> = vec![vec![0.0; num_trees]; n];
        let mut rounds = 0usize;
        let mut digest = 0u64;
        while incomplete > 0 {
            rounds += 1;
            let mut chosen: Vec<Option<usize>> = vec![None; n];
            for v in 0..n {
                let mut accrued = 0.0f64;
                let mut best: Option<usize> = None;
                let mut best_msg = usize::MAX;
                for tree in 0..num_trees {
                    let low = (0..nmsg).find(|&m| {
                        tree_of[m] == tree
                            && remaining[m] > 0
                            && received[m][v]
                            && !relayed[m][v]
                            && (tree_member[tree][v] || origins[m] == v)
                    });
                    let Some(m) = low else { continue };
                    credit[v][tree] += weight[tree];
                    accrued += weight[tree];
                    let better = match best {
                        Some(b) => credit[v][tree] > credit[v][b],
                        None => true,
                    };
                    if better {
                        best = Some(tree);
                        best_msg = m;
                    }
                }
                if let Some(b) = best {
                    credit[v][b] -= accrued;
                    chosen[v] = Some(best_msg);
                }
            }
            for v in 0..n {
                if let Some(m) = chosen[v] {
                    relayed[m][v] = true;
                    digest = digest.wrapping_add(relay_hash(rounds, v, m));
                    for &u in g.neighbors(v) {
                        if !received[m][u] {
                            received[m][u] = true;
                            recv_round[m][u] = rounds;
                            remaining[m] -= 1;
                            if remaining[m] == 0 {
                                incomplete -= 1;
                            }
                        }
                    }
                }
            }
        }
        (rounds, digest, recv_round)
    }

    /// Disjoint pair trees with genuinely *uneven* weights, so the
    /// weighted paths exercise non-uniform `x_τ / Σx` splits.
    fn uneven_pair_packing(t: usize, n: usize) -> (Graph, DomTreePacking) {
        let (g, mut packing) = disjoint_pair_packing(t, n);
        for (i, tree) in packing.trees.iter_mut().enumerate() {
            tree.weight = (i + 1) as f64 / t as f64;
        }
        packing.validate(&g, 1e-9).unwrap();
        (g, packing)
    }

    #[test]
    fn weighted_schedule_matches_reference_scan() {
        // The weighted credit scheduler is pinned by digest against its
        // own verbatim O(nmsg · n) oracle, exactly as
        // `bitset_schedule_matches_reference_scan` pins the greedy
        // default — same families, seeds, and both tree-choice policies,
        // plus an uneven-weight packing so the credit accrual exercises
        // distinct x_τ.
        let cases: Vec<(Graph, DomTreePacking)> = vec![
            {
                let g = generators::harary(8, 40);
                let p = packing_for(&g, 8, 1);
                (g, p)
            },
            {
                let g = generators::thick_path(4, 6);
                let p = packing_for(&g, 4, 3);
                (g, p)
            },
            disjoint_pair_packing(6, 36),
            uneven_pair_packing(6, 36),
            {
                let g = generators::cycle(17);
                let p = packing_for(&g, 2, 0);
                (g, p)
            },
        ];
        for (g, packing) in &cases {
            for seed in [0u64, 5, 9] {
                for tree_choice in [TreeChoice::Uniform, TreeChoice::Weighted] {
                    let origins: Vec<usize> = (0..2 * g.n()).map(|i| (i * 7) % g.n()).collect();
                    let config = GossipConfig {
                        tree_choice,
                        sharing: Sharing::Weighted,
                        ..Default::default()
                    };
                    let r = gossip_via_trees_with(g, packing, &origins, seed, config);
                    let (ref_rounds, ref_digest, recv_round) =
                        reference_weighted_schedule(g, packing, &origins, seed, tree_choice);
                    assert_eq!(
                        r.rounds, ref_rounds,
                        "schedule length diverged (seed {seed}, {tree_choice:?})"
                    );
                    assert_eq!(
                        r.schedule_digest, ref_digest,
                        "relay schedule diverged (seed {seed}, {tree_choice:?})"
                    );
                    for row in &recv_round {
                        assert!(
                            row.iter().all(|&rd| rd != usize::MAX),
                            "reference schedule incomplete"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn weighted_sharing_beats_greedy_on_constructed_packing() {
        // The Corollary A.1 claim the fractional regime exists for: on a
        // CDS-constructed packing at small k (trees overlapping in almost
        // every vertex), weighted time-sharing completes the same
        // workload in strictly fewer rounds than the greedy
        // lowest-index schedule, which starves high-indexed trees.
        // Deterministic: fixed seeds, pinned instances. The same holds at
        // bench scale (`gossip_scale`, BENCH_SIM.md).
        let g = generators::harary(16, 64);
        let packing = packing_for(&g, 16, 2);
        let origins: Vec<usize> = (0..4 * g.n()).map(|i| i % g.n()).collect();
        let greedy = gossip_via_trees(&g, &packing, &origins, 5);
        let weighted = gossip_via_trees_with(&g, &packing, &origins, 5, GossipConfig::weighted());
        assert!(
            weighted.rounds < greedy.rounds,
            "weighted {} must beat greedy {} on the overlapping packing",
            weighted.rounds,
            greedy.rounds
        );
    }

    #[test]
    fn weighted_tree_choice_skips_zero_weight_trees() {
        let (g, mut packing) = disjoint_pair_packing(6, 36);
        packing.trees[0].weight = 0.0;
        let origins: Vec<usize> = (0..3 * g.n()).map(|i| i % g.n()).collect();
        let weighted = gossip_via_trees_with(&g, &packing, &origins, 4, GossipConfig::weighted());
        assert_eq!(
            weighted.per_tree_load[0], 0,
            "zero-weight tree must carry no messages under weighted choice"
        );
        let uniform = gossip_via_trees(&g, &packing, &origins, 4);
        assert!(
            uniform.per_tree_load[0] > 0,
            "uniform choice ignores weights (premise of the comparison)"
        );
    }

    #[test]
    fn bitset_schedule_matches_reference_scan() {
        // Sweep families, seeds, and both packing regimes. The
        // worklist/heap rewrite claims to take the *same* greedy choice
        // every round (lowest-indexed eligible message per vertex, from
        // round-start state); `schedule_digest` — a commutative fold
        // over every (round, vertex, message) relay — must match the
        // reference scan's exactly, which pins the full schedule, not
        // just its length. The reference's reception trace also
        // certifies completeness.
        let cases: Vec<(Graph, DomTreePacking)> = vec![
            {
                let g = generators::harary(8, 40);
                let p = packing_for(&g, 8, 1);
                (g, p)
            },
            {
                let g = generators::thick_path(4, 6);
                let p = packing_for(&g, 4, 3);
                (g, p)
            },
            disjoint_pair_packing(6, 36),
            {
                let g = generators::cycle(17);
                let p = packing_for(&g, 2, 0);
                (g, p)
            },
        ];
        for (g, packing) in &cases {
            for seed in [0u64, 5, 9] {
                let origins: Vec<usize> = (0..2 * g.n()).map(|i| (i * 7) % g.n()).collect();
                let r = gossip_via_trees(g, packing, &origins, seed);
                let (ref_rounds, ref_digest, recv_round) =
                    reference_schedule(g, packing, &origins, seed);
                assert_eq!(
                    r.rounds, ref_rounds,
                    "schedule length diverged (seed {seed})"
                );
                assert_eq!(
                    r.schedule_digest, ref_digest,
                    "relay schedule diverged (seed {seed})"
                );
                for row in &recv_round {
                    assert!(
                        row.iter().all(|&rd| rd != usize::MAX),
                        "reference schedule incomplete"
                    );
                }
            }
        }
    }

    #[test]
    fn weighted_lane_retirement_keeps_schedule_pinned_as_trees_finish_early() {
        // Satellite of the fault suite: lanes whose tree delivered
        // everything now retire instead of idling forever. Retirement
        // must be schedule-neutral — an empty lane never accrued credit,
        // so dropping it cannot change any pick — which the
        // never-retiring reference oracle certifies by digest, and the
        // pinned round count guards against future drift. The uneven
        // workload makes trees finish at very different times (pair
        // trees with weights 1/6..6/6 and loads drawn by the weighted
        // sampler), so lanes genuinely retire mid-run.
        let (g, packing) = uneven_pair_packing(6, 36);
        let origins: Vec<usize> = (0..3 * g.n()).map(|i| (i * 5) % g.n()).collect();
        let config = GossipConfig::weighted();
        let r = gossip_via_trees_with(&g, &packing, &origins, 11, config);
        let (ref_rounds, ref_digest, _) =
            reference_weighted_schedule(&g, &packing, &origins, 11, TreeChoice::Weighted);
        assert_eq!(
            r.rounds, ref_rounds,
            "retirement changed the schedule length"
        );
        assert_eq!(
            r.schedule_digest, ref_digest,
            "retirement changed the schedule"
        );
        assert!(
            packing.trees.iter().map(|t| t.weight).any(|w| w != 1.0),
            "premise: uneven weights so trees finish at different times"
        );
        assert_eq!(
            r.rounds, 28,
            "pinned total rounds (update only if the schedule itself changes)"
        );
    }

    #[test]
    fn faulty_with_empty_plan_matches_fault_free_run() {
        // The fault path's extra machinery (relay table, tracker) must
        // be schedule-invisible while no fault has fired — and an empty
        // plan never fires.
        let (g, packing) = disjoint_pair_packing(6, 36);
        let origins: Vec<usize> = (0..2 * g.n()).map(|i| i % g.n()).collect();
        for config in [GossipConfig::default(), GossipConfig::weighted()] {
            let base = gossip_via_trees_with(&g, &packing, &origins, 3, config);
            let faulty =
                gossip_via_trees_faulty(&g, &packing, &origins, 3, config, &FaultPlan::none())
                    .unwrap();
            assert_eq!(faulty, base, "{config:?}");
        }
    }

    #[test]
    fn vertex_faults_below_connectivity_still_deliver_everything() {
        // Theorem 1.1's robustness reading: f < k faults against a
        // k-connected instance leave the survivors connected, and the
        // repair pass reroutes every message — nothing is lost and the
        // schedule completes (the function returning at all proves
        // delivery; a stuck message trips the stall assert).
        let (g, packing) = disjoint_pair_packing(8, 64); // K_{8,56}: κ = 8
        let origins: Vec<usize> = (0..g.n()).collect();
        for seed in [1u64, 4] {
            // Faults from round 2 on: every origin has relayed once, so
            // each message has ≥ deg + 1 ≥ 9 holders > f copies alive.
            let plan = FaultPlan::random_vertices(&g, 7, (2, 6), seed);
            for config in [GossipConfig::default(), GossipConfig::weighted()] {
                let r =
                    gossip_via_trees_faulty(&g, &packing, &origins, seed, config, &plan).unwrap();
                assert_eq!(r.lost_messages, 0, "seed {seed} {config:?}");
                assert!(!r.degradation.is_empty(), "fault rounds must be sampled");
                let last = r.degradation.last().unwrap();
                assert_eq!(last.live_vertices, g.n() - 7);
                assert_eq!(last.faults_fired, 7);
            }
        }
    }

    #[test]
    fn repair_reassigns_to_single_surviving_tree() {
        // Kill one endpoint of three of the four pair trees at round 2:
        // every message on a broken tree must move to the sole intact
        // tree (f = 3 < κ = 4, so nothing is lost).
        let (g, packing) = disjoint_pair_packing(4, 16);
        let origins: Vec<usize> = (0..g.n()).collect();
        let plan = FaultPlan::new([0, 1, 2].map(|v| ScheduledFault {
            round: 2,
            fault: Fault::Vertex(v),
        }));
        for config in [GossipConfig::default(), GossipConfig::weighted()] {
            let r = gossip_via_trees_faulty(&g, &packing, &origins, 2, config, &plan).unwrap();
            assert_eq!(r.lost_messages, 0, "{config:?}");
            assert_eq!(r.degradation.len(), 1);
            let s = r.degradation[0];
            assert_eq!(s.round, 2);
            assert_eq!(s.surviving_trees, 1, "only pair tree 3 stays intact");
            assert!(
                s.reassigned_messages > 0,
                "messages on broken trees must be rerouted"
            );
        }
    }

    #[test]
    fn flood_fallback_carries_messages_when_every_tree_breaks() {
        // Break all four pair trees (three left endpoints plus tree 3's
        // right endpoint) while keeping the survivors connected through
        // left vertex 3: with no tree intact, messages fall back to
        // flooding and still complete.
        let (g, packing) = disjoint_pair_packing(4, 16);
        let origins: Vec<usize> = (0..g.n()).collect();
        let plan = FaultPlan::new([0, 1, 2, 4 + 3].map(|v| ScheduledFault {
            round: 3,
            fault: Fault::Vertex(v),
        }));
        for config in [GossipConfig::default(), GossipConfig::weighted()] {
            let r = gossip_via_trees_faulty(&g, &packing, &origins, 6, config, &plan).unwrap();
            assert_eq!(r.lost_messages, 0, "{config:?}");
            let s = r.degradation[0];
            assert_eq!(s.surviving_trees, 0, "every tree must be broken");
            assert!(s.reassigned_messages > 0);
        }
    }

    #[test]
    fn cut_tree_edge_breaks_the_tree_without_killing_vertices() {
        // An edge fault on pair tree 0's only edge retires the tree but
        // keeps both endpoints alive and counting toward delivery.
        let (g, packing) = disjoint_pair_packing(4, 16);
        let origins: Vec<usize> = (0..g.n()).collect();
        let plan = FaultPlan::new([ScheduledFault {
            round: 2,
            fault: Fault::Edge(0, 4),
        }]);
        let r = gossip_via_trees_faulty(&g, &packing, &origins, 9, GossipConfig::default(), &plan)
            .unwrap();
        assert_eq!(r.lost_messages, 0);
        let s = r.degradation[0];
        assert_eq!(s.live_vertices, g.n(), "edge cuts kill no vertex");
        assert_eq!(s.surviving_trees, 3, "pair tree 0 lost its only edge");
    }

    #[test]
    fn faulty_runs_are_seed_deterministic() {
        let (g, packing) = disjoint_pair_packing(6, 36);
        let origins: Vec<usize> = (0..2 * g.n()).map(|i| i % g.n()).collect();
        let plan = FaultPlan::random_vertices(&g, 5, (2, 8), 13);
        for config in [GossipConfig::default(), GossipConfig::weighted()] {
            let a = gossip_via_trees_faulty(&g, &packing, &origins, 8, config, &plan).unwrap();
            let b = gossip_via_trees_faulty(&g, &packing, &origins, 8, config, &plan).unwrap();
            assert_eq!(a, b, "same plan + seed must reproduce bit-identically");
        }
    }

    #[test]
    fn faulty_rejects_bad_inputs_with_typed_errors_not_panics() {
        let (g, packing) = disjoint_pair_packing(4, 16);
        let plan = FaultPlan::none();
        assert_eq!(
            gossip_via_trees_faulty(
                &g,
                &DomTreePacking::default(),
                &[0],
                0,
                GossipConfig::default(),
                &plan
            ),
            Err(GossipError::EmptyPacking)
        );
        let split = Graph::from_edges(4, [(0, 1), (2, 3)]);
        assert_eq!(
            gossip_via_trees_faulty(&split, &packing, &[0], 0, GossipConfig::default(), &plan),
            Err(GossipError::Disconnected)
        );
        // All-zero weights — the shape pruning can leave behind — must
        // come back as an error under weighted choice, not a panic.
        let mut zeroed = packing.clone();
        for t in &mut zeroed.trees {
            t.weight = 0.0;
        }
        assert_eq!(
            gossip_via_trees_faulty(&g, &zeroed, &[0], 0, GossipConfig::weighted(), &plan),
            Err(GossipError::ZeroWeightPacking)
        );
        // ... but greedy sharing with uniform choice never reads the
        // weights, so the same packing still runs.
        let r = gossip_via_trees_faulty(&g, &zeroed, &[0], 0, GossipConfig::default(), &plan);
        assert!(r.is_ok());
    }
}
