//! Gossiping (all-to-all broadcast) via dominating-tree packings
//! (Appendix A, Corollary A.1).
//!
//! Every message is handed to a random tree of the packing and then
//! broadcast along that tree. The schedule is simulated faithfully at the
//! V-CONGEST level: per round, each vertex relays at most one message, and
//! a relay is a local broadcast reaching *all* graph neighbors (so
//! dominated non-tree vertices receive the message from adjacent tree
//! vertices). Corollary A.1: with `N` messages, at most `η` per node, all
//! messages reach all nodes in `O~(η + (N + n)/k)` rounds.

use decomp_core::packing::DomTreePacking;
use decomp_graph::{Graph, NodeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Result of a gossip schedule simulation.
#[derive(Clone, Debug)]
pub struct GossipReport {
    /// Rounds until every message reached every vertex.
    pub rounds: usize,
    /// Number of messages disseminated.
    pub num_messages: usize,
    /// Messages assigned to each tree.
    pub per_tree_load: Vec<usize>,
    /// Largest tree diameter in the packing (the `O~(n/k)` term).
    pub max_tree_diameter: usize,
}

/// A message to gossip: its origin vertex.
pub type MessageOrigin = NodeId;

/// Simulates the tree-parallel gossip schedule of Appendix A.
///
/// `origins[i]` holds message `i`. Each message is assigned to a uniformly
/// random tree of `packing`; vertices relay greedily (FIFO), one message
/// per vertex per round (V-CONGEST). Terminates when every message has
/// reached every vertex.
///
/// # Panics
/// Panics if the packing is empty, a tree fails to dominate, or the graph
/// is disconnected (the schedule would never complete).
pub fn gossip_via_trees(
    g: &Graph,
    packing: &DomTreePacking,
    origins: &[MessageOrigin],
    seed: u64,
) -> GossipReport {
    assert!(packing.num_trees() > 0, "need at least one tree");
    assert!(
        decomp_graph::traversal::is_connected(g),
        "gossip requires a connected graph"
    );
    let n = g.n();
    let mut rng = StdRng::seed_from_u64(seed);
    let num_trees = packing.num_trees();

    // Tree adjacency (within-tree neighbor lists) and membership.
    let mut tree_adj: Vec<Vec<Vec<NodeId>>> = Vec::with_capacity(num_trees);
    let mut tree_member: Vec<Vec<bool>> = Vec::with_capacity(num_trees);
    let mut max_diam = 0usize;
    for t in &packing.trees {
        let mut adj = vec![Vec::new(); n];
        let mut member = vec![false; n];
        for &(u, v) in &t.edges {
            adj[u].push(v);
            adj[v].push(u);
            member[u] = true;
            member[v] = true;
        }
        if let Some(s) = t.singleton {
            member[s] = true;
        }
        max_diam = max_diam.max(t.diameter(n));
        tree_adj.push(adj);
        tree_member.push(member);
    }

    // Message state.
    let nmsg = origins.len();
    let tree_of: Vec<usize> = (0..nmsg).map(|_| rng.gen_range(0..num_trees)).collect();
    let mut per_tree_load = vec![0usize; num_trees];
    for &t in &tree_of {
        per_tree_load[t] += 1;
    }
    // received[m] = bitmask over vertices; relayed[m][v] = v already spent
    // its slot on m.
    let mut received: Vec<Vec<bool>> = (0..nmsg)
        .map(|m| {
            let mut r = vec![false; n];
            r[origins[m]] = true;
            r
        })
        .collect();
    let mut relayed: Vec<Vec<bool>> = vec![vec![false; n]; nmsg];
    let mut remaining: Vec<usize> = (0..nmsg).map(|_| n - 1).collect();
    let mut incomplete = nmsg;

    let mut rounds = 0usize;
    let round_limit = 64 * (n + nmsg) + 1024;
    while incomplete > 0 {
        rounds += 1;
        assert!(
            rounds <= round_limit,
            "gossip schedule failed to complete within {round_limit} rounds"
        );
        // Each vertex relays its oldest eligible message this round.
        // Eligibility: holds it, hasn't relayed it, and is either the
        // origin (initial hand-off) or a member of the message's tree.
        let mut chosen: Vec<Option<usize>> = vec![None; n];
        for m in 0..nmsg {
            if remaining[m] == 0 {
                continue;
            }
            let tree = tree_of[m];
            for v in 0..n {
                if chosen[v].is_none()
                    && received[m][v]
                    && !relayed[m][v]
                    && (tree_member[tree][v] || v == origins[m])
                {
                    chosen[v] = Some(m);
                }
            }
        }
        let mut progressed = false;
        for v in 0..n {
            if let Some(m) = chosen[v] {
                relayed[m][v] = true;
                progressed = true;
                for &u in g.neighbors(v) {
                    if !received[m][u] {
                        received[m][u] = true;
                        remaining[m] -= 1;
                        if remaining[m] == 0 {
                            incomplete -= 1;
                        }
                    }
                }
            }
        }
        assert!(
            progressed || incomplete == 0,
            "gossip schedule stalled: a message can no longer make progress \
             (is some tree not dominating?)"
        );
    }
    GossipReport {
        rounds,
        num_messages: nmsg,
        per_tree_load,
        max_tree_diameter: max_diam,
    }
}

/// Baseline: the same workload over a single BFS spanning tree (the
/// pre-decomposition state of the art the paper contrasts with).
pub fn gossip_single_tree_baseline(
    g: &Graph,
    origins: &[MessageOrigin],
    seed: u64,
) -> GossipReport {
    let bfs = decomp_graph::traversal::bfs(g, 0);
    let edges: Vec<(NodeId, NodeId)> = bfs.tree_edges();
    let packing = DomTreePacking {
        trees: vec![decomp_core::packing::WeightedDomTree {
            id: 0,
            weight: 1.0,
            edges,
            singleton: if g.n() == 1 { Some(0) } else { None },
        }],
    };
    gossip_via_trees(g, &packing, origins, seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use decomp_core::cds::centralized::{cds_packing, CdsPackingConfig};
    use decomp_core::cds::tree_extract::to_dom_tree_packing;
    use decomp_graph::generators;

    fn packing_for(g: &Graph, k: usize, seed: u64) -> DomTreePacking {
        let p = cds_packing(g, &CdsPackingConfig::with_known_k(k, seed));
        let ex = to_dom_tree_packing(g, &p);
        assert!(ex.invalid_classes.is_empty());
        ex.packing
    }

    #[test]
    fn all_to_all_on_harary() {
        let g = generators::harary(12, 48);
        let packing = packing_for(&g, 12, 1);
        let origins: Vec<usize> = (0..g.n()).collect(); // one message per node
        let r = gossip_via_trees(&g, &packing, &origins, 9);
        assert_eq!(r.num_messages, 48);
        assert!(r.rounds > 0);
        let total: usize = r.per_tree_load.iter().sum();
        assert_eq!(total, 48);
    }

    /// A hand-built packing of genuinely vertex-disjoint dominating trees:
    /// in K_{t, n−t}, each pair (left_i, right_i) forms a 2-vertex
    /// dominating tree, and distinct pairs are disjoint. This is the
    /// regime Corollary 1.4 speaks about (constructed packings only become
    /// disjoint once k ≫ log n, which the bench harness exercises).
    fn disjoint_pair_packing(t: usize, n: usize) -> (Graph, DomTreePacking) {
        let g = generators::complete_bipartite(t, n - t);
        let trees = (0..t)
            .map(|i| decomp_core::packing::WeightedDomTree {
                id: i,
                weight: 1.0,
                edges: vec![(i, t + i)],
                singleton: None,
            })
            .collect();
        let packing = DomTreePacking { trees };
        packing.validate(&g, 1e-9).unwrap();
        (g, packing)
    }

    #[test]
    fn disjoint_trees_beat_single_tree() {
        let (g, packing) = disjoint_pair_packing(8, 64);
        let origins: Vec<usize> = (0..4 * g.n()).map(|i| i % g.n()).collect();
        let multi = gossip_via_trees(&g, &packing, &origins, 5);
        let single = gossip_single_tree_baseline(&g, &origins, 5);
        assert!(
            2 * multi.rounds < single.rounds,
            "8 disjoint trees ({}) must far outpace the single tree ({})",
            multi.rounds,
            single.rounds
        );
    }

    #[test]
    fn constructed_packing_not_much_worse_than_single_tree() {
        // At small scales the constructed classes overlap heavily, so no
        // speedup is expected — but the schedule must stay comparable.
        let g = generators::harary(16, 64);
        let packing = packing_for(&g, 16, 3);
        assert!(packing.num_trees() >= 4);
        let origins: Vec<usize> = (0..2 * g.n()).map(|i| i % g.n()).collect();
        let multi = gossip_via_trees(&g, &packing, &origins, 5);
        let single = gossip_single_tree_baseline(&g, &origins, 5);
        assert!(
            multi.rounds <= 2 * single.rounds + 10,
            "packing schedule ({}) should stay comparable to single tree ({})",
            multi.rounds,
            single.rounds
        );
    }

    #[test]
    fn single_message_reaches_everyone() {
        let g = generators::cycle(10);
        let packing = packing_for(&g, 2, 0);
        let r = gossip_via_trees(&g, &packing, &[3], 1);
        assert_eq!(r.num_messages, 1);
        // one message over a cycle: roughly diameter rounds
        assert!(r.rounds <= 3 * 10);
    }

    #[test]
    fn empty_workload() {
        let g = generators::cycle(5);
        let packing = packing_for(&g, 2, 0);
        let r = gossip_via_trees(&g, &packing, &[], 0);
        assert_eq!(r.rounds, 0);
        assert_eq!(r.num_messages, 0);
    }

    #[test]
    fn corollary_a1_shape() {
        // Rounds ≈ O~(η + (N + n)/k): with N = n messages and k large,
        // rounds should be well below the naive N + D bound.
        let g = generators::harary(16, 64);
        let packing = packing_for(&g, 16, 7);
        let origins: Vec<usize> = (0..g.n()).collect();
        let r = gossip_via_trees(&g, &packing, &origins, 3);
        let naive = g.n() + decomp_graph::traversal::diameter(&g).unwrap();
        assert!(
            r.rounds < 4 * naive,
            "rounds {} should be comparable to or better than naive {}",
            r.rounds,
            naive
        );
    }

    #[test]
    #[should_panic(expected = "at least one tree")]
    fn rejects_empty_packing() {
        let g = generators::cycle(4);
        gossip_via_trees(&g, &DomTreePacking::default(), &[0], 0);
    }
}
