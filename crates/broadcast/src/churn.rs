//! Gossip under live churn: mid-run departures *and* arrivals, with
//! tree re-extraction between fault waves.
//!
//! [`crate::gossip`]'s faulty schedules treat the dominating-tree
//! packing as frozen: a tree broken by a death stays broken, and its
//! messages fall back to flooding for the rest of the run. This module
//! closes the loop with the incremental CDS machinery
//! ([`ClassState`]): each time a fault wave fires, the wave's events
//! are applied to the class state (`delete_vertex` / `delete_edge` /
//! [`ClassState::insert_vertex`] / [`ClassState::insert_edge`] — only
//! the touched classes are repacked), and a fresh dominating tree is
//! re-extracted for every touched class that re-certifies
//! (`component_count == 1` over the survivors plus domination through
//! live edges — the same certificate
//! [`to_dom_tree_packing_with_state`](decomp_core::cds::tree_extract::to_dom_tree_packing_with_state)
//! uses). In-flight messages are then *re-admitted*: a message riding
//! the flood fallback moves back onto the lowest-id certified tree
//! holding a copy, so flood rounds stay bounded per wave instead of
//! accumulating for the rest of the run.
//!
//! The round loop is the greedy scheduler's (faults fire first,
//! choices from round-start state, deliveries in ascending sender
//! order, one relay per vertex per round), so digests are comparable
//! run to run: same graph, plan, seed, and origins → same
//! [`ChurnGossipReport::schedule_digest`].

use crate::gossip::{relay_hash, BitRows, FaultTracker, MessageOrigin};
use decomp_congest::{Fault, FaultPlan, FaultPlanError};
use decomp_core::cds::centralized::CdsPacking;
use decomp_core::cds::class_state::ClassState;
use decomp_core::cds::tree_extract::reextract_class_tree;
use decomp_core::packing::WeightedDomTree;
use decomp_graph::{Graph, GrowableGraph, NodeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::cmp::Reverse;
use std::collections::{BTreeSet, BinaryHeap};

/// Sentinel class id for the flood fallback (mirrors the private
/// sentinel of [`crate::gossip`]).
const FLOOD: usize = usize::MAX;

/// Why a churn run refused to start.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ChurnError {
    /// The fault plan failed [`FaultPlan::validate`].
    Plan(FaultPlanError),
    /// The final topology is disconnected; no schedule can complete.
    Disconnected,
}

impl std::fmt::Display for ChurnError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ChurnError::Plan(e) => write!(f, "invalid churn plan: {e}"),
            ChurnError::Disconnected => write!(f, "churn gossip requires a connected final graph"),
        }
    }
}

impl std::error::Error for ChurnError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ChurnError::Plan(e) => Some(e),
            ChurnError::Disconnected => None,
        }
    }
}

impl From<FaultPlanError> for ChurnError {
    fn from(e: FaultPlanError) -> Self {
        ChurnError::Plan(e)
    }
}

/// One fault wave's snapshot, recorded in order in
/// [`ChurnGossipReport::waves`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ChurnWaveSample {
    /// Schedule round (1-based) at whose start the wave fired.
    pub round: usize,
    /// Vertices alive and present after the wave.
    pub live_vertices: usize,
    /// Classes holding a certified dominating tree after re-extraction.
    pub certified_trees: usize,
    /// Touched classes whose tree was successfully re-extracted this
    /// wave (a broken class that re-certified, or a certified class
    /// whose tree was rebuilt over the new survivor set).
    pub reextracted_classes: usize,
    /// Messages moved, re-admitted, or reseeded by this wave's repair.
    pub reassigned_messages: usize,
    /// Messages declared lost by this wave (every copy dead).
    pub lost_messages: usize,
    /// Messages not yet delivered everywhere after the wave.
    pub incomplete_messages: usize,
    /// Cumulative flood rounds when the wave fired — consecutive
    /// samples difference to the per-wave flood cost, which stays
    /// bounded when re-extraction keeps restoring tree schedules.
    pub flood_rounds_before: usize,
}

/// Result of [`gossip_under_churn`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ChurnGossipReport {
    /// Rounds until every present vertex held every surviving message.
    pub rounds: usize,
    /// Messages disseminated.
    pub num_messages: usize,
    /// Whether no message was lost outright.
    pub complete: bool,
    /// Messages whose every copy sat on a dead vertex.
    pub lost_messages: usize,
    /// Deliveries that taught the receiver nothing.
    pub wasted_bandwidth: usize,
    /// Messages moved/re-admitted/reseeded across all repair passes.
    pub repair_events: usize,
    /// Rounds in which at least one relay served a flooding message.
    pub flood_rounds: usize,
    /// Successful per-class tree re-extractions across all waves.
    pub reextractions: usize,
    /// Order-independent fingerprint of the relay schedule (same fold
    /// as [`crate::gossip::GossipReport::schedule_digest`]).
    pub schedule_digest: u64,
    /// One snapshot per fault wave, in firing order.
    pub waves: Vec<ChurnWaveSample>,
    /// Class-free arrivals admitted into the packing incrementally
    /// ([`ClassState::admit_vertex`]) and served from trees. Always 0
    /// under [`gossip_under_churn`] — only [`gossip_under_growth`]
    /// admits.
    pub admitted_via_packing: usize,
    /// Class-free arrivals no class could absorb, left to domination
    /// or the flood fallback. Settled runs count every class-free
    /// arrival here.
    pub flood_served: usize,
}

/// Certifies class `c` over the current survivors and re-extracts its
/// dominating tree: non-empty, one component
/// ([`ClassState::component_count`]), every live present vertex
/// dominated through a usable edge, and the members spanning under the
/// tracker's edge filter.
fn certify_class(
    g: &Graph,
    ft: &FaultTracker<'_>,
    state: &ClassState,
    member: &BitRows,
    members_c: &[NodeId],
    c: usize,
) -> Option<WeightedDomTree> {
    if members_c.is_empty() || state.component_count(c) != 1 {
        return None;
    }
    'outer: for v in 0..g.n() {
        if ft.is_dead(v) || ft.is_dormant(v) || member.get(c, v) {
            continue;
        }
        for &u in g.neighbors(v) {
            if member.get(c, u) && ft.ok_edge(v, u) {
                continue 'outer;
            }
        }
        return None;
    }
    reextract_class_tree(g, c, members_c, |u, v| ft.ok_edge(u, v))
}

/// Runs seeded greedy gossip over the CDS packing's classes while the
/// fault plan churns the graph underneath it, re-extracting dominating
/// trees for the repaired classes between waves (see the module docs).
///
/// `state` is the [`ClassState`] the packing was built with
/// ([`cds_packing_with_state`](decomp_core::cds::centralized::cds_packing_with_state)
/// over the **final** topology); on return it reflects the post-churn
/// membership. The plan is [validated](FaultPlan::validate) first —
/// the typed-error path for churn scenarios.
///
/// Determinism: tree assignment draws from `StdRng::seed_from_u64(seed)`,
/// re-extraction is BFS over fixed adjacency, and idle waits
/// fast-forward without touching any stream — one digest per
/// `(graph, packing, origins, seed, plan)`.
pub fn gossip_under_churn(
    g: &Graph,
    cds: &CdsPacking,
    state: &mut ClassState,
    origins: &[MessageOrigin],
    seed: u64,
    plan: &FaultPlan,
) -> Result<ChurnGossipReport, ChurnError> {
    run_churn(g, cds, state, origins, seed, plan, false)
}

/// [`gossip_under_churn`] over a *growing* topology: the graph arrives
/// as a [`GrowableGraph`] whose overlay edges activate at their plan
/// rounds (`gg = plan.growth_topology(&base)`), so adjacency is
/// revealed only at arrival — no caller ever builds the final CSR.
///
/// The one behavioral difference from the settled run: a class-free
/// newcomer (an arrival the packing never assigned) is *admitted* into
/// a class incrementally ([`ClassState::admit_vertex`] — argmax
/// component-merge, bit-identical to a from-scratch repack), so
/// re-extraction serves it from trees. Only when no class can absorb
/// it does the run fall back to domination/flood, counted in
/// [`ChurnGossipReport::flood_served`].
///
/// The relay schedule itself runs over the final topology under the
/// tracker's activation filter — exactly the adjacency
/// `gg.neighbors_at(v, round)` exposes — so a growth run on a settled
/// plan (empty overlay, no class-free arrivals) is byte-identical to
/// [`gossip_under_churn`].
pub fn gossip_under_growth(
    gg: &GrowableGraph,
    cds: &CdsPacking,
    state: &mut ClassState,
    origins: &[MessageOrigin],
    seed: u64,
    plan: &FaultPlan,
) -> Result<ChurnGossipReport, ChurnError> {
    let gfull = gg.final_graph();
    run_churn(&gfull, cds, state, origins, seed, plan, true)
}

fn run_churn(
    g: &Graph,
    cds: &CdsPacking,
    state: &mut ClassState,
    origins: &[MessageOrigin],
    seed: u64,
    plan: &FaultPlan,
    admit: bool,
) -> Result<ChurnGossipReport, ChurnError> {
    plan.validate(g)?;
    let n = g.n();
    if n == 0 || !decomp_graph::traversal::is_connected(g) {
        return Err(ChurnError::Disconnected);
    }
    let nmsg = origins.len();
    let t = cds.num_classes();
    let events = plan.events();

    // Final-topology class memberships, captured before churn mutates
    // the state (arrivals re-enter exactly their original classes).
    let original: Vec<Vec<u32>> = (0..n).map(|v| state.classes_at(v).to_vec()).collect();
    let mut members: Vec<Vec<NodeId>> = cds.classes.clone();
    let mut member = BitRows::new(t.max(1), n);
    for (c, ms) in members.iter().enumerate() {
        for &v in ms {
            member.set(c, v);
        }
    }

    let mut ft = FaultTracker::new(plan, n);

    // Round-0 view: not-yet-arrived vertices and edges leave the class
    // state (they re-enter through the wave loop's `insert_*` calls).
    let g0 = plan.surviving_graph(g, 0);
    for v in plan.dormant_vertices_after(0) {
        for c in state.delete_vertex(&g0, v) {
            let c = c as usize;
            member.clear(c, v);
            if let Ok(i) = members[c].binary_search(&v) {
                members[c].remove(i);
            }
        }
    }
    for e in events {
        if let Fault::AddEdge(u, v) = e.fault {
            if e.round > 0 {
                state.delete_edge(&g0, u, v);
            }
        }
    }

    // Initial certification: one dominating tree per class that holds
    // together over the round-0 population.
    let mut trees: Vec<Option<WeightedDomTree>> = (0..t)
        .map(|c| certify_class(g, &ft, state, &member, &members[c], c))
        .collect();

    // Seeded tree assignment over the initially certified classes.
    let mut rng = StdRng::seed_from_u64(seed);
    let certified: Vec<usize> = (0..t).filter(|&c| trees[c].is_some()).collect();
    let mut tree_of: Vec<usize> = (0..nmsg)
        .map(|_| {
            if certified.is_empty() {
                FLOOD
            } else {
                certified[rng.gen_range(0..certified.len())]
            }
        })
        .collect();

    // Greedy-scheduler state (mirrors `crate::gossip::greedy_schedule`,
    // fault path always on).
    let mut received = BitRows::new(nmsg.max(1), n);
    let mut remaining: Vec<usize> = vec![n - 1; nmsg];
    let mut pending: Vec<BinaryHeap<Reverse<u32>>> = (0..n).map(|_| BinaryHeap::new()).collect();
    let mut relayed = BitRows::new(nmsg.max(1), n);
    let mut worklist: Vec<u32> = Vec::new();
    let mut queued: Vec<bool> = vec![false; n];
    let mut incomplete = 0usize;
    for (m, &origin) in origins.iter().enumerate() {
        received.set(m, origin);
        if remaining[m] > 0 {
            incomplete += 1;
        }
        pending[origin].push(Reverse(m as u32));
        if !queued[origin] {
            queued[origin] = true;
            worklist.push(origin as u32);
        }
    }

    let mut waves: Vec<ChurnWaveSample> = Vec::new();
    let mut lost_messages = 0usize;
    let mut wasted_bandwidth = 0usize;
    let mut repair_events = 0usize;
    let mut flood_rounds = 0usize;
    let mut reextractions = 0usize;
    let mut admitted_via_packing = 0usize;
    let mut flood_served = 0usize;
    let mut newly_dead: Vec<usize> = Vec::new();
    let mut applied = 0usize;
    // Kills already applied to the class state — "death wins" is
    // replayed in event order, exactly as the tracker sees it.
    let mut dead_applied = vec![false; n];

    let mut rounds = 0usize;
    let mut schedule_digest = 0u64;
    let round_limit = 64 * (n + nmsg) + 1024;
    let mut frontier: Vec<u32> = Vec::new();
    let mut relays: Vec<(u32, u32)> = Vec::new();
    while incomplete > 0 {
        rounds += 1;
        assert!(
            rounds <= round_limit,
            "churn gossip failed to complete within {round_limit} rounds"
        );
        // Phase 0 — the wave fires: events hit the class state, dead
        // vertices drop their queues, touched classes re-extract, and
        // the repair pass reassigns/re-admits in-flight messages.
        newly_dead.clear();
        if ft.advance(rounds, &mut newly_dead) {
            let g_live = plan.surviving_graph(g, rounds);
            let mut touched: BTreeSet<usize> = BTreeSet::new();
            for e in &events[applied..ft.fired()] {
                match e.fault {
                    Fault::Vertex(v) => {
                        dead_applied[v] = true;
                        for c in state.delete_vertex(&g_live, v) {
                            let c = c as usize;
                            member.clear(c, v);
                            if let Ok(i) = members[c].binary_search(&v) {
                                members[c].remove(i);
                            }
                            touched.insert(c);
                        }
                    }
                    Fault::Edge(u, v) => {
                        for c in state.delete_edge(&g_live, u, v) {
                            touched.insert(c as usize);
                        }
                    }
                    Fault::AddVertex(v) => {
                        if !dead_applied[v] {
                            // Packing members re-enter their original
                            // classes; a class-free newcomer is either
                            // admitted incrementally (growth mode) or
                            // left to domination/flood (settled mode).
                            let entered = if !original[v].is_empty() {
                                state.insert_vertex(&g_live, v, &original[v])
                            } else if admit {
                                let entered = state.admit_vertex(&g_live, v);
                                if entered.is_empty() {
                                    flood_served += 1;
                                } else {
                                    admitted_via_packing += 1;
                                }
                                entered
                            } else {
                                flood_served += 1;
                                Vec::new()
                            };
                            for c in entered {
                                let c = c as usize;
                                member.set(c, v);
                                if let Err(i) = members[c].binary_search(&v) {
                                    members[c].insert(i, v);
                                }
                                touched.insert(c);
                            }
                        }
                    }
                    Fault::AddEdge(u, v) => {
                        for c in state.insert_edge(u, v) {
                            touched.insert(c as usize);
                        }
                    }
                }
            }
            applied = ft.fired();
            // Dead vertices drop their relay queues and no longer
            // count toward delivery.
            for &v in &newly_dead {
                pending[v].clear();
            }
            for (m, rem) in remaining.iter_mut().enumerate() {
                if *rem == 0 {
                    continue;
                }
                for &v in &newly_dead {
                    if !received.get(m, v) {
                        *rem -= 1;
                        if *rem == 0 {
                            incomplete -= 1;
                        }
                    }
                }
            }
            // Re-extraction: only the touched classes are re-certified;
            // everything else keeps its tree untouched. An arrival can
            // also break certification (the newcomer may be
            // undominated), in which case the class floods until a
            // later wave heals it.
            let mut reextracted = 0usize;
            for &c in &touched {
                trees[c] = certify_class(g, &ft, state, &member, &members[c], c);
                if trees[c].is_some() {
                    reextracted += 1;
                }
            }
            reextractions += reextracted;
            // Repair + re-admission pass.
            let mut reassigned = 0usize;
            let mut lost = 0usize;
            for m in 0..nmsg {
                if remaining[m] == 0 {
                    continue;
                }
                // Dormant holders count: a dormant origin's message is
                // not lost — it arrives with the vertex.
                let holders: Vec<usize> = (0..n)
                    .filter(|&v| !ft.is_dead(v) && received.get(m, v))
                    .collect();
                if holders.is_empty() {
                    remaining[m] = 0;
                    incomplete -= 1;
                    lost += 1;
                    continue;
                }
                let eligible =
                    |c: usize, v: usize| c == FLOOD || member.get(c, v) || v == origins[m];
                let cur = tree_of[m];
                // Lowest-id certified class that can pick the message
                // up from a holder — the re-admission target.
                let target =
                    (0..t).find(|&c| trees[c].is_some() && holders.iter().any(|&v| eligible(c, v)));
                let covers = |c: usize| {
                    crate::gossip::assignment_still_covers(
                        g,
                        &ft,
                        origins[m],
                        c == FLOOD,
                        |v| c != FLOOD && member.get(c, v),
                        |v| received.get(m, v),
                        |v| relayed.get(m, v),
                    )
                };
                let next = if cur == FLOOD {
                    match target {
                        // Flood → tree re-admission, even mid-flood.
                        Some(c) => c,
                        None if covers(FLOOD) => continue,
                        None => FLOOD, // re-flood (e.g. an arrival needs redelivery)
                    }
                } else if cur < t && trees[cur].is_some() && covers(cur) {
                    continue; // current tree still reaches every needy vertex
                } else {
                    target.unwrap_or(FLOOD)
                };
                tree_of[m] = next;
                reassigned += 1;
                for &v in &holders {
                    if eligible(next, v) {
                        relayed.clear(m, v);
                        pending[v].push(Reverse(m as u32));
                        if !queued[v] {
                            queued[v] = true;
                            worklist.push(v as u32);
                        }
                    }
                }
            }
            lost_messages += lost;
            repair_events += reassigned;
            // Arrivals whose pending relays were seeded while they
            // slept (a dormant origin, or a reseed above) rejoin the
            // worklist now.
            for &v in ft.woke() {
                if !pending[v].is_empty() && !queued[v] {
                    queued[v] = true;
                    worklist.push(v as u32);
                }
            }
            waves.push(ChurnWaveSample {
                round: rounds,
                live_vertices: ft.live(),
                certified_trees: trees.iter().filter(|t| t.is_some()).count(),
                reextracted_classes: reextracted,
                reassigned_messages: reassigned,
                lost_messages: lost,
                incomplete_messages: incomplete,
                flood_rounds_before: flood_rounds,
            });
            if incomplete == 0 {
                rounds -= 1;
                break;
            }
        }
        // Phase 1 — each present vertex pops its lowest-indexed pending
        // message (dormant vertices sit out; their heaps keep the
        // entries until arrival).
        std::mem::swap(&mut frontier, &mut worklist);
        relays.clear();
        for &v in &frontier {
            let v = v as usize;
            queued[v] = false;
            if ft.is_dead(v) || ft.is_dormant(v) {
                continue;
            }
            while let Some(&Reverse(m)) = pending[v].peek() {
                pending[v].pop();
                if remaining[m as usize] > 0 && !relayed.get(m as usize, v) {
                    relays.push((v as u32, m));
                    break;
                }
            }
        }
        // Phase 2 — apply all relays; receptions push next-round work.
        let mut flooded = false;
        for &(v, m) in &relays {
            schedule_digest =
                schedule_digest.wrapping_add(relay_hash(rounds, v as usize, m as usize));
            relayed.set(m as usize, v as usize);
            let tree = tree_of[m as usize];
            flooded |= tree == FLOOD;
            for &u in g.neighbors(v as usize) {
                if !ft.ok_edge(v as usize, u) {
                    continue;
                }
                if !received.get(m as usize, u) {
                    received.set(m as usize, u);
                    remaining[m as usize] -= 1;
                    if remaining[m as usize] == 0 {
                        incomplete -= 1;
                    }
                    if tree == FLOOD || member.get(tree, u) {
                        pending[u].push(Reverse(m));
                        if !queued[u] {
                            queued[u] = true;
                            worklist.push(u as u32);
                        }
                    }
                } else {
                    wasted_bandwidth += 1;
                }
            }
        }
        flood_rounds += flooded as usize;
        // Vertices that still hold pending relays stay on the frontier.
        for &v in &frontier {
            if !pending[v as usize].is_empty() && !queued[v as usize] {
                queued[v as usize] = true;
                worklist.push(v);
            }
        }
        frontier.clear();
        if relays.is_empty() && incomplete > 0 {
            // Idle only while a scheduled arrival is still due; jump to
            // its eve (digest-neutral — idle rounds carry no relays).
            let Some(r) = ft.next_event_round() else {
                panic!(
                    "churn gossip stalled: a message can no longer make progress \
                     (did churn disconnect the survivors?)"
                );
            };
            rounds = rounds.max(r.saturating_sub(1));
        }
    }

    Ok(ChurnGossipReport {
        rounds,
        num_messages: nmsg,
        complete: lost_messages == 0,
        lost_messages,
        wasted_bandwidth,
        repair_events,
        flood_rounds,
        reextractions,
        schedule_digest,
        waves,
        admitted_via_packing,
        flood_served,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use decomp_congest::ScheduledFault;
    use decomp_core::cds::centralized::{cds_packing_with_state, CdsPackingConfig};
    use decomp_graph::generators;

    fn setup(g: &Graph, t: usize, seed: u64) -> (CdsPacking, ClassState) {
        cds_packing_with_state(g, &CdsPackingConfig::with_classes(t, seed))
    }

    #[test]
    fn fault_free_churn_run_completes_on_trees() {
        let g = generators::harary(8, 40);
        let (cds, mut st) = setup(&g, 4, 1);
        let origins: Vec<usize> = (0..g.n()).collect();
        let plan = FaultPlan::new([]);
        let r = gossip_under_churn(&g, &cds, &mut st, &origins, 7, &plan).unwrap();
        assert!(r.complete);
        assert_eq!(r.lost_messages, 0);
        assert_eq!(r.repair_events, 0);
        assert_eq!(r.flood_rounds, 0, "no churn, no flooding");
        assert_eq!(r.reextractions, 0);
        assert!(r.waves.is_empty());
        assert!(r.rounds > 0);
    }

    #[test]
    fn rejects_invalid_plans_with_typed_errors() {
        let g = generators::cycle(6);
        let (cds, mut st) = setup(&g, 2, 0);
        let plan = FaultPlan::new([ScheduledFault {
            round: 1,
            fault: Fault::Vertex(99),
        }]);
        let err = gossip_under_churn(&g, &cds, &mut st, &[0], 1, &plan).unwrap_err();
        assert!(matches!(
            err,
            ChurnError::Plan(FaultPlanError::NodeOutOfRange { node: 99, .. })
        ));
    }

    #[test]
    fn kill_wave_reextracts_and_readmits_from_flood() {
        // Harary graph, enough connectivity that one death leaves every
        // class repairable.
        let g = generators::harary(8, 48);
        let (cds, mut st) = setup(&g, 4, 3);
        // One message per origin: each origin's first (only) broadcast
        // lands before the wave, so nothing can be lost outright.
        let origins: Vec<usize> = (0..g.n()).collect();
        let plan = FaultPlan::new([ScheduledFault {
            round: 4,
            fault: Fault::Vertex(5),
        }]);
        let r = gossip_under_churn(&g, &cds, &mut st, &origins, 9, &plan).unwrap();
        assert!(r.complete);
        assert_eq!(r.waves.len(), 1);
        let w = &r.waves[0];
        assert_eq!(w.round, 4);
        assert_eq!(w.live_vertices, g.n() - 1);
        // Every touched class re-certified: the survivors keep full
        // tree schedules, so any flooding is confined to the wave.
        if w.certified_trees == cds.num_classes() {
            assert!(
                r.flood_rounds <= 2,
                "re-extraction should cap flooding, saw {}",
                r.flood_rounds
            );
        }
    }

    #[test]
    fn arrival_wave_delivers_to_the_newcomer() {
        let g = generators::harary(6, 24);
        let (cds, mut st) = setup(&g, 3, 2);
        let origins: Vec<usize> = (0..g.n()).filter(|&v| v != 7).collect();
        // Vertex 7 arrives long after the old population is fully
        // served (the run fast-forwards through the idle wait): the
        // wave must reseed relayed holders to deliver to the newcomer.
        let plan = FaultPlan::new([ScheduledFault {
            round: 200,
            fault: Fault::AddVertex(7),
        }]);
        let r = gossip_under_churn(&g, &cds, &mut st, &origins, 11, &plan).unwrap();
        assert!(r.complete, "latecomer must be served after arrival");
        assert_eq!(r.lost_messages, 0);
        assert_eq!(r.waves.len(), 1);
        assert!(
            r.rounds >= 200,
            "idle wait fast-forwards to the arrival, rounds = {}",
            r.rounds
        );
        assert!(
            r.waves[0].reassigned_messages > 0,
            "arrival redelivery reseeds holders"
        );
    }

    #[test]
    fn dormant_origin_message_waits_for_its_arrival() {
        let g = generators::harary(6, 24);
        let (cds, mut st) = setup(&g, 3, 4);
        // Message 0 originates at vertex 3, which has not arrived yet:
        // the run must idle (fast-forward) to round 6 and still finish.
        let plan = FaultPlan::new([ScheduledFault {
            round: 6,
            fault: Fault::AddVertex(3),
        }]);
        let r = gossip_under_churn(&g, &cds, &mut st, &[3], 13, &plan).unwrap();
        assert!(r.complete);
        assert!(
            r.rounds >= 6,
            "cannot finish before the origin arrives, rounds = {}",
            r.rounds
        );
    }

    #[test]
    fn growth_run_on_a_settled_plan_matches_the_settled_run() {
        // Empty overlay + every arrival already packed → the growth
        // path must be byte-identical to the settled one, report and
        // counters included.
        let g = generators::harary(8, 40);
        let origins: Vec<usize> = (0..2 * g.n()).map(|i| i % g.n()).collect();
        let plan = FaultPlan::new([
            ScheduledFault {
                round: 3,
                fault: Fault::Vertex(2),
            },
            ScheduledFault {
                round: 6,
                fault: Fault::AddVertex(9),
            },
        ]);
        let (cds, mut st) = setup(&g, 4, 5);
        assert!(
            !st.classes_at(9).is_empty(),
            "fixture: the arrival must be a packed vertex"
        );
        let settled = gossip_under_churn(&g, &cds, &mut st, &origins, 21, &plan).unwrap();
        let gg = GrowableGraph::from_base(g.clone());
        let (cds2, mut st2) = setup(&g, 4, 5);
        let grown = gossip_under_growth(&gg, &cds2, &mut st2, &origins, 21, &plan).unwrap();
        assert_eq!(grown, settled);
        assert_eq!(grown.admitted_via_packing, 0);
        assert_eq!(grown.flood_served, 0);
    }

    #[test]
    fn growth_admits_a_class_free_newcomer_and_serves_it_from_trees() {
        // The packing predates vertex 7: it is dropped from the state
        // and the class lists, its edges exist only in the growth
        // overlay, and the plan reveals them at the arrival round.
        let gfull = generators::harary(6, 24);
        let newcomer = 7usize;
        let base = Graph::from_edges(
            gfull.n(),
            (0..gfull.n()).flat_map(|u| {
                gfull
                    .neighbors(u)
                    .iter()
                    .filter(move |&&v| u < v && u != newcomer && v != newcomer)
                    .map(move |&v| (u, v))
            }),
        );
        let mut events = vec![ScheduledFault {
            round: 5,
            fault: Fault::AddVertex(newcomer),
        }];
        for &u in gfull.neighbors(newcomer) {
            events.push(ScheduledFault {
                round: 5,
                fault: Fault::AddEdge(newcomer, u),
            });
        }
        let plan = FaultPlan::new(events);
        let gg = plan.growth_topology(&base);
        assert_eq!(gg.overlay_len(), gfull.neighbors(newcomer).len());
        let origins: Vec<usize> = (0..gfull.n()).filter(|&v| v != newcomer).collect();
        let run = |admit: bool| {
            // A packing built before the newcomer existed: build over
            // the final topology, then evict 7 — membership exactly as
            // if 7 had never joined.
            let (mut cds, mut st) = setup(&gfull, 3, 2);
            for c in st.delete_vertex(&gfull, newcomer) {
                let ms = &mut cds.classes[c as usize];
                if let Ok(i) = ms.binary_search(&newcomer) {
                    ms.remove(i);
                }
            }
            if admit {
                gossip_under_growth(&gg, &cds, &mut st, &origins, 11, &plan).unwrap()
            } else {
                gossip_under_churn(&gfull, &cds, &mut st, &origins, 11, &plan).unwrap()
            }
        };
        let grown = run(true);
        assert!(grown.complete, "newcomer must be served");
        assert_eq!(grown.admitted_via_packing, 1, "the newcomer joined a class");
        assert_eq!(grown.flood_served, 0);
        assert_eq!(grown.flood_rounds, 0, "admission keeps the trees certified");
        let settled = run(false);
        assert!(settled.complete);
        assert_eq!(settled.admitted_via_packing, 0, "settled runs never admit");
        assert_eq!(
            settled.flood_served, 1,
            "the class-free arrival is counted against the fallback"
        );
    }

    #[test]
    fn churn_digest_is_reproducible() {
        let g = generators::harary(8, 40);
        let origins: Vec<usize> = (0..3 * g.n()).map(|i| i % g.n()).collect();
        let mk_plan = || {
            FaultPlan::new([
                ScheduledFault {
                    round: 3,
                    fault: Fault::Vertex(2),
                },
                ScheduledFault {
                    round: 6,
                    fault: Fault::AddVertex(9),
                },
                ScheduledFault {
                    round: 9,
                    fault: Fault::Vertex(17),
                },
            ])
        };
        let run = || {
            let (cds, mut st) = setup(&generators::harary(8, 40), 4, 5);
            let plan = mk_plan();
            gossip_under_churn(&g, &cds, &mut st, &origins, 21, &plan).unwrap()
        };
        let (a, b) = (run(), run());
        assert_eq!(a, b, "same inputs must give the same churn report");
        assert!(a.waves.len() >= 2);
    }
}
