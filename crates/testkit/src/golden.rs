//! Golden-value registry.
//!
//! Invariant checks catch *wrong* outputs; golden values catch *changed*
//! ones. Every entry pins a deterministic quantity of a seeded pipeline
//! run (class counts, packing sizes, round counts) on a fixture from
//! [`crate::fixtures`]. If an algorithm change shifts a value, the test
//! fails with both numbers and the fix is a conscious registry update in
//! the same PR — silent behavioral drift is impossible.
//!
//! All values are formatted as strings: integers verbatim, floats through
//! [`f4`] (4 decimal places, enough to notice real drift while ignoring
//! nothing — the pipelines are bit-deterministic given the vendored RNG).

/// Formats a float for the registry (4 decimal places).
pub fn f4(x: f64) -> String {
    format!("{x:.4}")
}

/// The registry. Keys are `<fixture>/<pipeline>/<quantity>`. Keep sorted.
const GOLDEN: &[(&str, &str)] = &[
    ("clustered_barbell_c8_b3/bfs0/rounds", "8"),
    ("harary_k12_n48/cds_s1/invalid", "0"),
    ("harary_k12_n48/cds_s1/num_trees", "3"),
    ("harary_k12_n48/cds_s1/size", "1.0000"),
    ("harary_k12_n48/stp_mwu/size", "6.0376"),
    ("harary_k4_n24/bfs0/rounds", "8"),
    ("harary_k4_n24/cds_s1/invalid", "0"),
    ("harary_k4_n24/cds_s1/num_trees", "1"),
    ("harary_k4_n24/cds_s1/size", "1.0000"),
    ("harary_k4_n24/rlnc/digest", "9091721286111269509"),
    ("harary_k4_n24/rlnc/rounds", "14"),
    ("harary_k4_n24/stp_mwu/size", "2.0259"),
    ("harary_k8_n40/bfs0/rounds", "7"),
    ("harary_k8_n40/cds_s1/invalid", "0"),
    ("harary_k8_n40/cds_s1/num_trees", "2"),
    ("harary_k8_n40/cds_s1/size", "1.0000"),
    ("harary_k8_n40/rlnc/digest", "4710250910717473556"),
    ("harary_k8_n40/rlnc/rounds", "13"),
    ("harary_k8_n40/stp_mwu/size", "4.0607"),
    ("hypercube_d4/bfs0/rounds", "6"),
    ("hypercube_d4/cds_s1/invalid", "0"),
    ("hypercube_d4/cds_s1/num_trees", "1"),
    ("hypercube_d4/cds_s1/size", "1.0000"),
    ("hypercube_d4/rlnc/digest", "6121290089643668354"),
    ("hypercube_d4/rlnc/rounds", "6"),
    ("hypercube_d4/stp_mwu/size", "2.1232"),
    ("hypercube_d5/bfs0/rounds", "7"),
    ("hypercube_d5/cds_s1/invalid", "0"),
    ("hypercube_d5/cds_s1/num_trees", "1"),
    ("hypercube_d5/cds_s1/size", "1.0000"),
    ("hypercube_d5/rlnc/digest", "11865363333373612559"),
    ("hypercube_d5/rlnc/rounds", "10"),
    ("hypercube_d5/stp_mwu/size", "2.5609"),
    ("lowerbound/g2_n32000_alpha4/cost", "5"),
    ("lowerbound/g2_n4000_alpha4/cost", "3"),
    ("lowerbound/g2_n500_alpha4/cost", "2"),
    ("random_regular_n24_d4/bfs0/rounds", "6"),
    ("random_regular_n24_d4/cds_s1/invalid", "0"),
    ("random_regular_n24_d4/cds_s1/num_trees", "1"),
    ("random_regular_n24_d4/cds_s1/size", "1.0000"),
    ("random_regular_n24_d4/rlnc/digest", "10129589551469018331"),
    ("random_regular_n24_d4/rlnc/rounds", "9"),
    ("random_regular_n24_d4/stp_mwu/size", "2.0684"),
    ("random_regular_n36_d6/bfs0/rounds", "5"),
    ("random_regular_n36_d6/cds_s1/invalid", "0"),
    ("random_regular_n36_d6/cds_s1/num_trees", "1"),
    ("random_regular_n36_d6/cds_s1/size", "1.0000"),
    ("random_regular_n36_d6/rlnc/digest", "14363031946562860219"),
    ("random_regular_n36_d6/rlnc/rounds", "11"),
    ("random_regular_n36_d6/stp_mwu/size", "3.0264"),
];

/// Looks up the recorded value for `key`.
pub fn expected(key: &str) -> Option<&'static str> {
    GOLDEN
        .binary_search_by_key(&key, |&(k, _)| k)
        .ok()
        .map(|i| GOLDEN[i].1)
}

/// Asserts that `actual` matches the recorded golden value for `key`.
///
/// # Panics
/// * key unknown — the message contains the exact tuple to paste into
///   `GOLDEN`;
/// * value mismatch — the message shows recorded vs. actual.
pub fn check(key: &str, actual: impl std::fmt::Display) {
    let actual = actual.to_string();
    match expected(key) {
        None => panic!(
            "no golden entry for `{key}`; if this quantity is newly pinned, add\n    (\"{key}\", \"{actual}\"),\nto GOLDEN in crates/testkit/src/golden.rs"
        ),
        Some(exp) => assert_eq!(
            exp, actual,
            "golden drift for `{key}`: recorded {exp}, got {actual} — if intentional, update crates/testkit/src/golden.rs"
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_is_sorted_and_unique() {
        for w in GOLDEN.windows(2) {
            assert!(w[0].0 < w[1].0, "GOLDEN must stay sorted: {:?}", w[0].0);
        }
    }

    #[test]
    #[should_panic(expected = "no golden entry")]
    fn unknown_key_panics_with_paste_line() {
        check("definitely/not/recorded", 7);
    }
}
