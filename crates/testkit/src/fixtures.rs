//! The fixed fixture roster every integration suite runs against.
//!
//! Each [`Fixture`] couples a deterministically generated graph with its
//! *exact* vertex and edge connectivity, computed once by the substrate's
//! flow-based oracles at construction time. Random families use seeds
//! that are compile-time constants, so the instances are identical in
//! every run and every PR.

use decomp_graph::{connectivity, generators, Graph};

/// The graph families the paper's experiments exercise.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Family {
    /// Harary graph `H_{k,n}` — exactly `k`-connected with `⌈kn/2⌉` edges.
    Harary,
    /// Random `d`-regular graph (fixed seed).
    RandomRegular,
    /// `d`-dimensional hypercube — `d`-connected, diameter `d`.
    Hypercube,
    /// Clustered / lollipop-style graph: dense cliques joined by a thin
    /// bridge (barbell); connectivity 1, the fragile end of the spectrum.
    Clustered,
}

impl Family {
    /// All families, in roster order.
    pub const ALL: [Family; 4] = [
        Family::Harary,
        Family::RandomRegular,
        Family::Hypercube,
        Family::Clustered,
    ];
}

/// One deterministic test instance with known ground truth.
pub struct Fixture {
    /// Human-readable identifier, also used as the golden-registry key
    /// prefix (e.g. `harary_k8_n40`).
    pub name: String,
    pub family: Family,
    pub graph: Graph,
    /// Exact vertex connectivity `κ(G)` (flow oracle).
    pub kappa: usize,
    /// Exact edge connectivity `λ(G)` (flow oracle).
    pub lambda: usize,
}

impl Fixture {
    fn new(name: impl Into<String>, family: Family, graph: Graph) -> Self {
        let kappa = connectivity::vertex_connectivity(&graph);
        let lambda = connectivity::edge_connectivity(&graph);
        Fixture {
            name: name.into(),
            family,
            graph,
            kappa,
            lambda,
        }
    }
}

/// The full roster: every family at the sizes the suites are tuned for.
/// Order and contents are stable — golden values key off fixture names.
pub fn standard() -> Vec<Fixture> {
    let mut out = Vec::new();
    for &(k, n) in &[(4usize, 24usize), (8, 40), (12, 48)] {
        out.push(Fixture::new(
            format!("harary_k{k}_n{n}"),
            Family::Harary,
            generators::harary(k, n),
        ));
    }
    for &(n, d, seed) in &[(24usize, 4usize, 11u64), (36, 6, 11)] {
        out.push(Fixture::new(
            format!("random_regular_n{n}_d{d}"),
            Family::RandomRegular,
            generators::random_regular(n, d, seed),
        ));
    }
    for d in [4u32, 5] {
        out.push(Fixture::new(
            format!("hypercube_d{d}"),
            Family::Hypercube,
            generators::hypercube(d),
        ));
    }
    out.push(Fixture::new(
        "clustered_barbell_c8_b3",
        Family::Clustered,
        generators::barbell(8, 3),
    ));
    out
}

/// Fixtures small enough for CONGEST-simulator runs (every family still
/// represented).
pub fn small() -> Vec<Fixture> {
    standard()
        .into_iter()
        .filter(|f| f.graph.n() <= 40)
        .collect()
}

/// Connected fixtures with `κ ≥ 2` — the preconditions of the CDS/STP
/// pipelines (the clustered family stays in [`standard`] for the
/// fragile-input paths).
pub fn well_connected() -> Vec<Fixture> {
    standard().into_iter().filter(|f| f.kappa >= 2).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roster_is_stable_and_ground_truth_matches_formulas() {
        let fixtures = standard();
        assert_eq!(fixtures.len(), 8);
        for f in &fixtures {
            match f.family {
                // Harary H_{k,n} and the d-cube are exactly k/d-connected.
                Family::Harary | Family::Hypercube => {
                    assert_eq!(f.kappa, f.lambda, "{}", f.name);
                }
                // A barbell has a cut vertex and a bridge.
                Family::Clustered => {
                    assert_eq!(f.kappa, 1, "{}", f.name);
                    assert_eq!(f.lambda, 1, "{}", f.name);
                }
                Family::RandomRegular => {
                    assert!(f.kappa >= 1 && f.kappa <= f.lambda, "{}", f.name);
                }
            }
            assert!(f.kappa <= f.lambda, "{}: kappa > lambda", f.name);
        }
        assert_eq!(fixtures[0].kappa, 4);
        assert_eq!(fixtures[1].kappa, 8);
        assert_eq!(fixtures[2].kappa, 12);
    }

    #[test]
    fn rosters_are_deterministic_across_calls() {
        let a = standard();
        let b = standard();
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.name, y.name);
            assert_eq!(x.graph.edges(), y.graph.edges());
            assert_eq!(x.kappa, y.kappa);
            assert_eq!(x.lambda, y.lambda);
        }
    }

    #[test]
    fn every_family_survives_the_small_filter() {
        let small = small();
        for fam in Family::ALL {
            assert!(
                small.iter().any(|f| f.family == fam),
                "family {fam:?} missing from small roster"
            );
        }
    }
}
