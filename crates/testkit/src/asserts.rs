//! Packing-invariant assertion helpers.
//!
//! Each helper encodes one of the paper's guarantees as a reusable check,
//! so every suite asserts the same thing the same way and failures carry
//! the fixture context in their message.

use crate::TOL;
use decomp_core::cds::centralized::CdsPacking;
use decomp_core::cds::tree_extract::ExtractedTrees;
use decomp_core::cds::verify::{verify_centralized, VerifyOutcome};
use decomp_core::packing::SpanTreePacking;
use decomp_graph::domination::is_cds;
use decomp_graph::Graph;

/// The CDS packing invariants of Theorem 1.1 / Appendix C:
///
/// 1. every virtual node is assigned a class,
/// 2. real-node multiplicity is bounded by `3L`,
/// 3. the per-layer excess-component count never grows,
/// 4. every class verifies as a connected dominating set.
///
/// `ctx` is prefixed to every failure message (fixture name, seed, ...).
pub fn assert_cds_packing_invariants(g: &Graph, p: &CdsPacking, ctx: &str) {
    assert!(
        p.class_of.iter().all(|c| c.is_some()),
        "{ctx}: unassigned virtual node"
    );
    assert!(
        p.max_real_multiplicity() <= 3 * p.layout.layers(),
        "{ctx}: multiplicity {} exceeds 3L = {}",
        p.max_real_multiplicity(),
        3 * p.layout.layers()
    );
    for tr in &p.trace {
        assert!(
            tr.excess_after <= tr.excess_before,
            "{ctx}: excess grew at layer {}",
            tr.layer
        );
    }
    assert_eq!(
        verify_centralized(g, &p.classes),
        VerifyOutcome::Pass,
        "{ctx}: class verification"
    );
}

/// Feasibility of an extracted dominating-tree packing plus the cut
/// bound: a fractional dominating-tree packing has size at most `κ(G)`
/// (Theorem 1.1's upper limit — every tree must dominate, so each tree
/// hits every vertex cut).
pub fn assert_dom_tree_packing_feasible(
    g: &Graph,
    trees: &ExtractedTrees,
    kappa: usize,
    ctx: &str,
) {
    trees
        .packing
        .validate(g, TOL)
        .unwrap_or_else(|e| panic!("{ctx}: infeasible dominating-tree packing: {e}"));
    assert!(
        trees.packing.size() <= kappa as f64 + TOL,
        "{ctx}: packing size {} exceeds kappa {}",
        trees.packing.size(),
        kappa
    );
    // Every packed tree must itself be a CDS (the extractor's contract).
    for (i, t) in trees.packing.trees.iter().enumerate() {
        let mut mask = vec![false; g.n()];
        for v in t.vertices(g.n()) {
            mask[v] = true;
        }
        assert!(is_cds(g, &mask), "{ctx}: packed tree {i} is not a CDS");
    }
}

/// Feasibility of a fractional spanning-tree packing plus the
/// Tutte–Nash-Williams cut bound `Σ x_τ ≤ λ(G)` (every spanning tree
/// crosses every edge cut at least once) and an explicit lower target
/// (`(1-ε)·⌈(λ-1)/2⌉`-style guarantees, passed in by the caller).
pub fn assert_span_tree_packing_feasible(
    g: &Graph,
    packing: &SpanTreePacking,
    lambda: usize,
    min_size: f64,
    ctx: &str,
) {
    packing
        .validate(g, TOL)
        .unwrap_or_else(|e| panic!("{ctx}: infeasible spanning-tree packing: {e}"));
    assert!(
        packing.size() <= lambda as f64 + TOL,
        "{ctx}: packing size {} exceeds lambda {}",
        packing.size(),
        lambda
    );
    assert!(
        packing.size() >= min_size - TOL,
        "{ctx}: packing size {} below target {min_size}",
        packing.size()
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures;
    use decomp_core::cds::centralized::{cds_packing, CdsPackingConfig};
    use decomp_core::cds::tree_extract::to_dom_tree_packing;
    use decomp_core::stp::mwu::{fractional_stp_mwu, MwuConfig};

    #[test]
    fn helpers_accept_a_known_good_pipeline() {
        let f = &fixtures::standard()[1]; // harary_k8_n40
        let p = cds_packing(&f.graph, &CdsPackingConfig::with_known_k(f.kappa, 1));
        assert_cds_packing_invariants(&f.graph, &p, &f.name);
        let trees = to_dom_tree_packing(&f.graph, &p);
        assert_dom_tree_packing_feasible(&f.graph, &trees, f.kappa, &f.name);
        let r = fractional_stp_mwu(&f.graph, f.lambda, &MwuConfig::default());
        assert_span_tree_packing_feasible(&f.graph, &r.packing, f.lambda, 1.0, &f.name);
    }

    #[test]
    #[should_panic(expected = "exceeds kappa")]
    fn dom_bound_rejects_inflated_packing() {
        let f = &fixtures::standard()[0]; // harary_k4_n24
        let p = cds_packing(&f.graph, &CdsPackingConfig::with_known_k(f.kappa, 1));
        let trees = to_dom_tree_packing(&f.graph, &p);
        // Claim kappa = 0: any non-empty packing must violate the bound.
        assert_dom_tree_packing_feasible(&f.graph, &trees, 0, &f.name);
    }
}
