//! # decomp-testkit
//!
//! Deterministic test substrate shared by every integration suite in the
//! workspace. Three pieces:
//!
//! * [`fixtures`] — a fixed roster of seeded graph-family instances
//!   (Harary, random regular, hypercube, clustered/lollipop) with their
//!   exact vertex/edge connectivities computed once at construction, so
//!   every PR tests against the same instances with known ground truth;
//! * [`asserts`] — packing-invariant assertion helpers encoding the
//!   paper's guarantees (CDS packing validity, dominating-tree packing
//!   feasibility with the `Σ x_τ ≤ κ` cut bound, spanning-tree packing
//!   feasibility with the Tutte–Nash-Williams `Σ x_τ ≤ λ` bound);
//! * [`golden`] — a golden-value registry pinning deterministic outputs
//!   (class counts, packing sizes, round counts) so regressions in the
//!   seeded pipelines are caught as value drift, not just invariant
//!   violations.
//!
//! Everything here is deterministic: fixture seeds are compile-time
//! constants and all randomness flows through explicitly seeded
//! [`rand::rngs::StdRng`] streams, so two consecutive `cargo test` runs
//! produce identical results.

pub mod asserts;
pub mod fixtures;
pub mod golden;

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Canonical seeds the suites sweep; kept small so failures name a seed
/// that is cheap to replay.
pub const SEEDS: [u64; 3] = [1, 7, 23];

/// Floating-point tolerance used by every packing validation in the suites.
pub const TOL: f64 = 1e-9;

/// A deterministically seeded RNG for test-local randomness.
pub fn rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}
