//! # decomp-testkit
//!
//! Deterministic test substrate shared by every integration suite in the
//! workspace. Three pieces:
//!
//! * [`fixtures`] — a fixed roster of seeded graph-family instances
//!   (Harary, random regular, hypercube, clustered/lollipop) with their
//!   exact vertex/edge connectivities computed once at construction, so
//!   every PR tests against the same instances with known ground truth;
//! * [`asserts`] — packing-invariant assertion helpers encoding the
//!   paper's guarantees (CDS packing validity, dominating-tree packing
//!   feasibility with the `Σ x_τ ≤ κ` cut bound, spanning-tree packing
//!   feasibility with the Tutte–Nash-Williams `Σ x_τ ≤ λ` bound);
//! * [`golden`] — a golden-value registry pinning deterministic outputs
//!   (class counts, packing sizes, round counts) so regressions in the
//!   seeded pipelines are caught as value drift, not just invariant
//!   violations.
//!
//! Everything here is deterministic: fixture seeds are compile-time
//! constants and all randomness flows through explicitly seeded
//! [`rand::rngs::StdRng`] streams, so two consecutive `cargo test` runs
//! produce identical results.

pub mod asserts;
pub mod fixtures;
pub mod golden;

use decomp_congest::{EngineKind, Model, Simulator};
use decomp_graph::Graph;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Canonical seeds the suites sweep; kept small so failures name a seed
/// that is cheap to replay.
pub const SEEDS: [u64; 3] = [1, 7, 23];

/// Floating-point tolerance used by every packing validation in the suites.
pub const TOL: f64 = 1e-9;

/// A deterministically seeded RNG for test-local randomness.
pub fn rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// The engine sweep the equivalence suites run: sequential plus the
/// sharded backend at 2 and 4 contiguous shards and 4 topology-aware
/// shards. Every entry must produce bit-identical outputs and
/// statistics — modulo the `RunStats` locality split, which suites
/// normalize with `RunStats::locality_blind` (the `congest::engine`
/// determinism contract).
pub fn engines() -> Vec<EngineKind> {
    vec![
        EngineKind::Sequential,
        EngineKind::sharded(2),
        EngineKind::sharded(4),
        EngineKind::sharded_topo(4),
    ]
}

/// The engine selected by the `DECOMP_ENGINE` environment variable
/// (`sequential`, `sharded`, `sharded:<N>`, or `sharded:<N>:topo`),
/// defaulting to sequential. CI's engine-equivalence jobs rerun the
/// simulator-driven suites — golden registry included — under
/// `DECOMP_ENGINE=sharded:4` and `DECOMP_ENGINE=sharded:4:topo`.
///
/// # Panics
/// Panics on an unparsable `DECOMP_ENGINE` value, so CI misconfiguration
/// fails loudly instead of silently testing the default engine.
pub fn engine_from_env() -> EngineKind {
    match std::env::var("DECOMP_ENGINE") {
        Ok(spec) => EngineKind::parse(&spec)
            .unwrap_or_else(|e| panic!("bad DECOMP_ENGINE environment variable: {e}")),
        Err(_) => EngineKind::Sequential,
    }
}

/// A simulator on the env-selected engine ([`engine_from_env`]).
/// Integration suites construct simulators through this helper so one
/// environment variable sweeps them across backends.
pub fn sim<'g>(graph: &'g Graph, model: Model) -> Simulator<'g> {
    Simulator::new(graph, model).with_engine(engine_from_env())
}
