//! E8 — Corollary 1.7: `O(log n)`-approximation of vertex connectivity.
//!
//! Reports the certified packing size `κ` (`κ ≤ k` always) and the ratio
//! `k / κ`, which should stay within `O(log n)` — centralized and
//! distributed.

use decomp_bench::table::{d, f, Table};
use decomp_congest::{Model, Simulator};
use decomp_core::connectivity_approx::{
    approx_vertex_connectivity, approx_vertex_connectivity_distributed,
};
use decomp_graph::connectivity::vertex_connectivity;
use decomp_graph::generators;

fn main() {
    let engine = decomp_bench::cli::engine_from_args();
    let mut t = Table::new(
        &format!("E8: vertex-connectivity approximation (Cor 1.7) [engine={engine}]"),
        &[
            "family",
            "n",
            "true k",
            "kappa",
            "estimate",
            "k/kappa",
            "log n",
            "dist rounds",
        ],
    );
    let cases: Vec<(&str, decomp_graph::Graph)> = vec![
        ("harary", generators::harary(8, 40)),
        ("harary", generators::harary(16, 64)),
        ("harary", generators::harary(32, 96)),
        ("hypercube", generators::hypercube(5)),
        ("barbell", generators::barbell(10, 2)),
        ("clique+3", generators::clique_plus_triples(6)),
        ("rand-reg", generators::random_regular(48, 10, 3)),
    ];
    for (name, g) in cases {
        let k = vertex_connectivity(&g);
        let approx = approx_vertex_connectivity(&g, 7);
        let mut sim = Simulator::new(&g, Model::VCongest).with_engine(engine);
        let dist = approx_vertex_connectivity_distributed(&mut sim, 7).unwrap();
        assert!(dist.packing_size <= k as f64 + 1e-9);
        t.row(&[
            name.into(),
            d(g.n()),
            d(k),
            f(approx.packing_size),
            d(approx.estimate()),
            f(k as f64 / approx.packing_size.max(1e-9)),
            f((g.n() as f64).log2()),
            d(sim.stats().rounds),
        ]);
    }
    t.print();
}
