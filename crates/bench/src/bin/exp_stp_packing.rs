//! E4 — Theorem 1.3: fractional spanning-tree packing of size
//! `⌈(λ−1)/2⌉(1−ε)` with per-edge load ≤ 1 and edge multiplicity
//! `O(log³ n)`, via the MWU engine (λ = O(log n)) and the Karger-sampled
//! generalization (larger λ).

use decomp_bench::table::{d, f, Table};
use decomp_core::stp::mwu::{fractional_stp_mwu, MwuConfig};
use decomp_core::stp::sampled::sampled_stp;
use decomp_graph::connectivity::edge_connectivity;
use decomp_graph::generators;

fn main() {
    let eps = 0.1;
    let mut t = Table::new(
        "E4: spanning-tree packing (Thm 1.3)",
        &[
            "family",
            "n",
            "m",
            "lambda",
            "target",
            "size",
            "ratio",
            "maxload",
            "edge-mult",
            "log3n",
            "iters",
        ],
    );
    let cases: Vec<(&str, decomp_graph::Graph)> = vec![
        ("harary", generators::harary(4, 32)),
        ("harary", generators::harary(8, 32)),
        ("harary", generators::harary(12, 48)),
        ("complete", generators::complete(16)),
        ("hypercube", generators::hypercube(5)),
        ("rand-reg", generators::random_regular(40, 8, 3)),
    ];
    for (name, g) in cases {
        let lambda = edge_connectivity(&g);
        let report = fractional_stp_mwu(
            &g,
            lambda,
            &MwuConfig {
                epsilon: eps,
                max_iterations: None,
            },
        );
        report.packing.validate(&g, 1e-9).expect("feasible");
        let target = ((lambda as f64 - 1.0) / 2.0).ceil().max(1.0);
        let loads = report.packing.edge_loads(&g);
        let maxload = loads.iter().cloned().fold(0.0, f64::max);
        let logn = (g.n() as f64).log2();
        t.row(&[
            name.to_string(),
            d(g.n()),
            d(g.m()),
            d(lambda),
            f(target),
            f(report.packing.size()),
            f(report.packing.size() / target),
            f(maxload),
            d(report.packing.max_edge_multiplicity(&g)),
            f(logn * logn * logn),
            d(report.iterations.len()),
        ]);
    }
    t.print();

    // Sampled generalization (Section 5.2) on a large-λ instance.
    let mut t2 = Table::new(
        "E4b: Karger-sampled packing (Sec 5.2)",
        &[
            "family",
            "n",
            "lambda",
            "eta",
            "lambda_sum",
            "size",
            "target",
            "ratio",
        ],
    );
    let g = generators::complete(48); // lambda = 47
    let lambda = 47;
    let r = sampled_stp(&g, 0.15, 9);
    r.packing.validate(&g, 1e-9).expect("feasible");
    let target = ((lambda as f64 - 1.0) / 2.0).ceil();
    t2.row(&[
        "complete".into(),
        d(g.n()),
        d(lambda),
        d(r.eta),
        d(r.lambda_sum),
        f(r.packing.size()),
        f(target),
        f(r.packing.size() / target),
    ]);
    t2.print();
}
