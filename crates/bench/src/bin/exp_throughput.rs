//! E6 — Corollaries 1.4/1.5: broadcast throughput against the
//! information-theoretic limits (`k` msgs/round in V-CONGEST, `λ` in
//! E-CONGEST) and against the single-BFS-tree baseline.

use decomp_bench::packings::disjoint_pair_packing;
use decomp_bench::table::{d, f, Table};
use decomp_broadcast::gossip::GossipConfig;
use decomp_broadcast::throughput::{edge_throughput, vertex_throughput_with};
use decomp_core::cds::centralized::{cds_packing, CdsPackingConfig};
use decomp_core::cds::tree_extract::to_dom_tree_packing;
use decomp_core::stp::mwu::{fractional_stp_mwu, MwuConfig};
use decomp_graph::connectivity::edge_connectivity;
use decomp_graph::generators;

fn main() {
    let configs = [
        ("uniform", GossipConfig::default()),
        ("weighted", GossipConfig::weighted()),
        ("rlnc", GossipConfig::rlnc(8, 5)),
    ];
    // --- Corollary 1.4: V-CONGEST throughput. ---------------------------
    let mut t = Table::new(
        "E6a: broadcast throughput, V-CONGEST (Cor 1.4)",
        &[
            "family",
            "n",
            "k",
            "trees",
            "sched",
            "msgs/round",
            "baseline",
            "limit k",
        ],
    );
    for &(k, n) in &[(8usize, 48usize), (16, 64), (24, 96)] {
        let g = generators::harary(k, n);
        let p = cds_packing(&g, &CdsPackingConfig::with_known_k(k, 2));
        let trees = to_dom_tree_packing(&g, &p).packing;
        trees.validate(&g, 1e-9).unwrap();
        for (sched, config) in configs {
            let r = vertex_throughput_with(&g, &trees, k, 4 * n, 5, config);
            t.row(&[
                "harary".into(),
                d(n),
                d(k),
                d(trees.num_trees()),
                sched.into(),
                f(r.messages_per_round),
                f(r.baseline_messages_per_round),
                d(k),
            ]);
        }
    }
    // The vertex-disjoint regime (what the theorem predicts at k >> log n),
    // using the shared hand-built disjoint pair trees on K_{t, n-t}
    // (weighted feasibly and validated by the helper).
    for &tcount in &[4usize, 8, 16] {
        let n = 96;
        let g = generators::complete_bipartite(tcount, n - tcount);
        let packing = disjoint_pair_packing(&g, tcount);
        for (sched, config) in configs {
            let r = vertex_throughput_with(&g, &packing, tcount, 6 * n, 7, config);
            t.row(&[
                "disjoint-pairs".into(),
                d(n),
                d(tcount),
                d(tcount),
                sched.into(),
                f(r.messages_per_round),
                f(r.baseline_messages_per_round),
                d(tcount),
            ]);
        }
    }
    t.print();

    // --- Corollary 1.5: E-CONGEST throughput. ---------------------------
    let mut t2 = Table::new(
        "E6b: broadcast throughput, E-CONGEST (Cor 1.5)",
        &["family", "n", "lambda", "rate", "TNW target", "limit"],
    );
    for (name, g) in [
        ("harary", generators::harary(8, 32)),
        ("harary", generators::harary(12, 48)),
        ("complete", generators::complete(16)),
    ] {
        let lambda = edge_connectivity(&g);
        let packing = fractional_stp_mwu(&g, lambda, &MwuConfig::default()).packing;
        let r = edge_throughput(&g, &packing, lambda);
        t2.row(&[
            name.into(),
            d(g.n()),
            d(lambda),
            f(r.messages_per_round),
            d(r.tutte_nash_williams),
            d(r.limit),
        ]);
    }
    t2.print();
}
