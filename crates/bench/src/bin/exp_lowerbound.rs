//! E10 — Theorem G.2 / Lemmas G.3–G.6: the lower-bound family.
//!
//! Verifies the cut dichotomy of `G(X,Y)` (connectivity 4 vs ≥ w = αk+1 at
//! diameter 3), and compares the achievable distinguishing cost
//! (min of the hub-relay and path-relay protocols) against the theorem's
//! `Ω(√(n/(αk log n)))` as `n` grows.

use decomp_bench::table::{d, f, Table};
use decomp_graph::connectivity::vertex_connectivity;
use decomp_graph::traversal::diameter;
use decomp_lowerbound::construction::{build_g, round_lower_bound, LbParams};
use decomp_lowerbound::simulation::{
    canonical_instances, distinguishing_cost, simulate_two_party, theorem_g2_params,
};
use std::collections::BTreeSet;

fn main() {
    // --- Cut dichotomy (Lemmas G.3/G.4). --------------------------------
    let mut t = Table::new(
        "E10a: G(X,Y) cut structure (Lemma G.4)",
        &["h", "ell", "w", "n", "diam", "k disjoint", "k intersecting"],
    );
    for &(h, ell, w) in &[(4usize, 2usize, 5usize), (6, 2, 8), (4, 3, 6)] {
        let p = LbParams { h, ell, w };
        let x: BTreeSet<usize> = (1..=h / 2).collect();
        let y_disj: BTreeSet<usize> = (h / 2 + 1..=h).collect();
        let mut y_int = y_disj.clone();
        y_int.insert(1);
        let gd = build_g(&p, &x, &y_disj);
        let gi = build_g(&p, &x, &y_int);
        t.row(&[
            d(h),
            d(ell),
            d(w),
            d(gd.graph.n()),
            d(diameter(&gd.graph).unwrap()),
            d(vertex_connectivity(&gd.graph)),
            d(vertex_connectivity(&gi.graph)),
        ]);
    }
    t.print();

    // --- Round scaling (Theorem G.2). ------------------------------------
    let mut t2 = Table::new(
        "E10b: distinguishing cost vs theorem bound (Thm G.2)",
        &[
            "n_target",
            "alpha*k",
            "h",
            "ell",
            "cost(rounds)",
            "bound sqrt(n/(ak log n))",
        ],
    );
    for &n_target in &[400usize, 1600, 6400, 25_600, 102_400] {
        let alpha_k = 4;
        let (p, n_real) = theorem_g2_params(n_target, alpha_k);
        let cost = distinguishing_cost(&p, n_real);
        let bound = round_lower_bound(n_real, 1.0, alpha_k);
        t2.row(&[d(n_target), d(alpha_k), d(p.h), d(p.ell), d(cost), f(bound)]);
    }
    t2.print();

    // --- Two-party transcript (Lemma G.6). -------------------------------
    let mut t3 = Table::new(
        "E10c: Alice/Bob transcript (Lemma G.6: 2BT bits)",
        &["h", "B bits", "rounds T", "cross bits", "2BT"],
    );
    for &h in &[64usize, 256, 1024] {
        let p = LbParams { h, ell: 2, w: 3 };
        let n = p.g_size(1, 1);
        let x: BTreeSet<usize> = [1].into();
        let y: BTreeSet<usize> = [1].into();
        let (tr, found) = simulate_two_party(&p, &x, &y, n);
        assert_eq!(found, Some(1));
        let b = decomp_lowerbound::simulation::bandwidth_bits(n);
        t3.row(&[
            d(h),
            d(b),
            d(tr.rounds),
            d(tr.total_bits()),
            d(2 * b * tr.rounds),
        ]);
    }
    t3.print();

    // Sanity: canonical instances really differ in connectivity.
    let p = LbParams { h: 4, ell: 2, w: 6 };
    let (dis, int) = canonical_instances(&p);
    assert!(vertex_connectivity(&dis.graph) >= p.w);
    assert_eq!(vertex_connectivity(&int.graph), 4);
    println!(
        "\ncanonical instances verified: k(disjoint) >= {}, k(intersecting) = 4",
        p.w
    );
}
