//! E1 — Theorem 1.1/1.2: fractional dominating-tree packing quality.
//!
//! For each family and connectivity `k`: number of classes `t = Θ(k)`,
//! how many came out valid CDSs, the per-node multiplicity (paper bound:
//! `O(log n)` = at most `3L`), the fractional packing size
//! `κ ∈ [Ω(k/log n), k]`, and the largest tree diameter (paper: `O~(n/k)`).

use decomp_bench::table::{d, f, Table};
use decomp_core::cds::centralized::{cds_packing, CdsPackingConfig};
use decomp_core::cds::tree_extract::to_dom_tree_packing;
use decomp_graph::{generators, Graph};

fn run_case(t: &mut Table, name: &str, g: &Graph, k: usize, seed: u64) {
    let packing = cds_packing(g, &CdsPackingConfig::with_known_k(k, seed));
    let ex = to_dom_tree_packing(g, &packing);
    let n = g.n();
    let mult = ex.packing.max_vertex_multiplicity(n);
    let max_diam = ex
        .packing
        .trees
        .iter()
        .map(|tr| tr.diameter(n))
        .max()
        .unwrap_or(0);
    let logn = (n as f64).log2();
    t.row(&[
        name.to_string(),
        d(n),
        d(g.m()),
        d(k),
        d(packing.num_classes()),
        d(ex.packing.num_trees()),
        d(ex.invalid_classes.len()),
        d(mult),
        d(3 * packing.layout.layers()),
        f(ex.packing.size()),
        f(k as f64 / logn),
        d(max_diam),
    ]);
}

fn main() {
    let mut t = Table::new(
        "E1: dominating-tree packing (Thm 1.1/1.2)",
        &[
            "family",
            "n",
            "m",
            "k",
            "t",
            "valid",
            "invalid",
            "mult",
            "3L(bound)",
            "kappa",
            "k/log n",
            "maxdiam",
        ],
    );
    for &k in &[8usize, 16, 32, 64] {
        let n = (4 * k).max(64);
        let g = generators::harary(k, n);
        run_case(&mut t, "harary", &g, k, 1);
    }
    for &d_ in &[5u32, 6, 7] {
        let g = generators::hypercube(d_);
        run_case(&mut t, "hypercube", &g, d_ as usize, 2);
    }
    for &deg in &[8usize, 16] {
        let g = generators::random_regular(96, deg, 7);
        let k = decomp_graph::connectivity::vertex_connectivity(&g);
        run_case(&mut t, "rand-regular", &g, k, 3);
    }
    // Large-k regime where the fractional size exceeds 1 (k >> log n).
    let g = generators::harary(160, 320);
    run_case(&mut t, "harary-large", &g, 160, 4);
    t.print();

    // The κ > 1 regime needs t > 3L: many classes, few layers. This is the
    // k ≫ log n asymptotic the Ω(k/log n) bound describes.
    let mut t2 = Table::new(
        "E1b: fractional size κ > 1 (t > 3L regime)",
        &["n", "k", "t", "L", "valid", "mult", "kappa", "k/log n"],
    );
    for &(k, n, tcls) in &[(200usize, 400usize, 60usize), (400, 800, 100)] {
        let g = generators::harary(k, n);
        let cfg = decomp_core::cds::centralized::CdsPackingConfig {
            num_classes: tcls,
            layers_factor: 1.0,
            seed: 9,
            workers: 1,
        };
        let packing = cds_packing(&g, &cfg);
        let ex = to_dom_tree_packing(&g, &packing);
        t2.row(&[
            d(n),
            d(k),
            d(tcls),
            d(packing.layout.layers()),
            d(ex.packing.num_trees()),
            d(ex.packing.max_vertex_multiplicity(g.n())),
            f(ex.packing.size()),
            f(k as f64 / (n as f64).log2()),
        ]);
    }
    t2.print();
}
