//! E12 — Lemmas F.1/F.2: the MWU iteration dynamics. Prints the max-load
//! trajectory and the termination ratio for a representative run, plus the
//! final certified bounds.

use decomp_bench::table::{d, f, Table};
use decomp_core::stp::mwu::{fractional_stp_mwu, MwuConfig};
use decomp_graph::connectivity::edge_connectivity;
use decomp_graph::generators;

fn main() {
    let g = generators::harary(8, 32);
    let lambda = edge_connectivity(&g);
    let eps = 0.1;
    let report = fractional_stp_mwu(
        &g,
        lambda,
        &MwuConfig {
            epsilon: eps,
            max_iterations: None,
        },
    );
    let mut t = Table::new(
        "E12: MWU trace (Lemmas F.1/F.2), harary(8,32), sampled iterations",
        &["iter", "max_z", "mst_cost_ratio"],
    );
    let total = report.iterations.len();
    let stride = (total / 24).max(1);
    for (i, it) in report.iterations.iter().enumerate() {
        if i % stride == 0 || i + 1 == total {
            t.row(&[d(i), f(it.max_z), f(it.mst_cost_ratio)]);
        }
    }
    t.print();
    println!(
        "\niterations = {total}, terminated_by_condition = {}, final_max_z = {:.4} (Lemma F.1 bound: {:.4})",
        report.terminated_by_condition,
        report.final_max_z,
        1.0 + 6.0 * eps
    );
    assert!(report.final_max_z <= 1.0 + 6.0 * eps + 1e-6);
}
