//! E2 — Theorem 1.2: centralized CDS packing runs in `O~(m)`.
//!
//! Measures wall time over an `m` sweep and reports `time / (m log² n)`,
//! which should stay roughly flat if the implementation meets the bound.

use decomp_bench::table::{d, f, Table};
use decomp_core::cds::centralized::{cds_packing, CdsPackingConfig};
use decomp_graph::generators;
use std::time::Instant;

fn main() {
    let mut t = Table::new(
        "E2: centralized runtime scaling (Thm 1.2)",
        &["n", "m", "k", "time_ms", "us_per_m", "us_per_mlog2n"],
    );
    for &(n, k) in &[
        (64usize, 16usize),
        (128, 24),
        (256, 32),
        (512, 48),
        (1024, 64),
    ] {
        let g = generators::harary(k, n);
        let cfg = CdsPackingConfig::with_known_k(k, 5);
        let start = Instant::now();
        let packing = cds_packing(&g, &cfg);
        let elapsed = start.elapsed();
        assert!(packing.num_classes() >= 1);
        let ms = elapsed.as_secs_f64() * 1e3;
        let us = elapsed.as_secs_f64() * 1e6;
        let logn = (n as f64).log2();
        t.row(&[
            d(n),
            d(g.m()),
            d(k),
            f(ms),
            f(us / g.m() as f64),
            f(us / (g.m() as f64 * logn * logn)),
        ]);
    }
    t.print();
}
