//! E11 — Lemma 4.4 (Fast Merger) and Lemma 4.3 (Connector Abundance):
//! per-layer excess-component traces of the CDS construction, plus the
//! flow-certified connector counts for dominated split classes.

use decomp_bench::table::{d, f, Table};
use decomp_core::cds::centralized::{cds_packing, CdsPackingConfig};
use decomp_core::cds::connector::{max_disjoint_connectors, ProjectionView};
use decomp_graph::generators;

fn main() {
    // --- Fast Merger trace. ----------------------------------------------
    // With the default constants, jump-start classes on dense graphs are
    // connected from the start (M = 0 everywhere) — the interesting regime
    // needs *sparse* class projections: few layers and many classes. We
    // therefore use L ≈ log n and t close to k, which leaves each class
    // covering only ~half the vertices, and watch the excess decay.
    let mut t = Table::new(
        "E11a: Fast Merger (Lemma 4.4): per-layer excess components",
        &[
            "k",
            "t",
            "n",
            "layer",
            "M_before",
            "M_after",
            "decay",
            "matched",
            "deactivated",
        ],
    );
    for &(k, tcls, n, seed) in &[(48usize, 60usize, 384usize, 1u64), (64, 80, 512, 2)] {
        let g = generators::harary(k, n);
        let cfg = CdsPackingConfig {
            num_classes: tcls,
            layers_factor: 1.0,
            seed,
            workers: 1,
        };
        let p = cds_packing(&g, &cfg);
        for tr in &p.trace {
            let decay = if tr.excess_before > 0 {
                tr.excess_after as f64 / tr.excess_before as f64
            } else {
                0.0
            };
            t.row(&[
                d(k),
                d(tcls),
                d(n),
                d(tr.layer),
                d(tr.excess_before),
                d(tr.excess_after),
                f(decay),
                d(tr.matched),
                d(tr.deactivated),
            ]);
        }
        let final_excess = p.trace.last().map(|tr| tr.excess_after).unwrap_or(0);
        println!("k={k} t={tcls} n={n}: final excess = {final_excess}");
    }
    t.print();

    // --- Connector abundance. --------------------------------------------
    let mut t2 = Table::new(
        "E11b: Connector Abundance (Lemma 4.3): flow-certified counts",
        &["k", "n", "connectors", "bound k"],
    );
    for &k in &[4usize, 6, 8, 10] {
        // Two arcs on the Harary ring with gaps of exactly 2*floor(k/2):
        // dominating, disconnected, non-adjacent (cf. connector tests).
        let gap = 2 * (k / 2);
        let arc = 3 * k;
        let n = 2 * (arc + gap);
        let g = generators::harary(k, n);
        let comp_of: Vec<Option<usize>> = (0..n)
            .map(|v| {
                if v < arc {
                    Some(0)
                } else if (arc + gap..2 * arc + gap).contains(&v) {
                    Some(1)
                } else {
                    None
                }
            })
            .collect();
        let mask: Vec<bool> = comp_of.iter().map(|c| c.is_some()).collect();
        assert!(decomp_graph::domination::is_dominating_set(&g, &mask));
        let view = ProjectionView::new(&comp_of, 0);
        let connectors = max_disjoint_connectors(&g, &view);
        t2.row(&[d(k), d(n), d(connectors), d(k)]);
    }
    t2.print();
}
