//! Full-pipeline scale driver: CDS packing → tree extraction → gossip
//! protocol, at million-node scale, on a chosen engine and worker count.
//!
//! This is the measurement harness for the sharded engine's scaling
//! curves (BENCH_SIM.md "PR 7"): one process runs every stage of the
//! paper's pipeline on one instance and prints per-stage wall-clock
//! plus the engine's `RunStats` — including the `local_words` /
//! `cross_shard_words` locality split, which is the partitioner's cut
//! measured on real delivered traffic (so `contig` vs `topo` can be
//! compared on the same workload).
//!
//! All-node gossip at n = 10⁶ is infeasible (10⁶ messages × 10⁶ nodes);
//! the dissemination stage instead injects `--msgs` messages from
//! evenly-spaced origins — enough traffic to exercise the mailbox plane
//! without making the experiment about the gossip schedule itself.
//!
//! ```text
//! cargo run --release --bin exp_pipeline -- \
//!     --n 1000000 --degree 8 --seed 1 --engine sharded:4:topo \
//!     --workers 4 --msgs 64 --family rr
//! ```
//!
//! Defaults: `--n 100000 --degree 8 --seed 1 --engine sequential
//! --workers 1 --msgs 64 --family rr`. `--family harary` builds the
//! `harary(degree, n)` circulant instead of a random-regular instance
//! (ids correlate with topology, the contiguous partitioner's best
//! case; `rr` is its worst case).

use decomp_broadcast::gossip::GossipConfig;
use decomp_broadcast::gossip_distributed::gossip_protocol_on;
use decomp_congest::{EngineKind, Model, Simulator};
use decomp_core::cds::centralized::{cds_packing, CdsPackingConfig};
use decomp_core::cds::tree_extract::to_dom_tree_packing;
use decomp_graph::generators;
use std::time::Instant;

struct Args {
    n: usize,
    degree: usize,
    seed: u64,
    /// `--engine` takes a comma-separated list — the instance and the
    /// packing are built once and the dissemination stage sweeps the
    /// engines, so an n = 10⁶ scaling curve is one process.
    engines: Vec<EngineKind>,
    workers: usize,
    msgs: usize,
    family: String,
}

fn parse_args() -> Args {
    let mut args = Args {
        n: 100_000,
        degree: 8,
        seed: 1,
        engines: vec![EngineKind::Sequential],
        workers: 1,
        msgs: 64,
        family: "rr".into(),
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i + 1 < argv.len() {
        let (flag, val) = (argv[i].as_str(), argv[i + 1].as_str());
        match flag {
            "--n" => args.n = val.parse().expect("--n"),
            "--degree" => args.degree = val.parse().expect("--degree"),
            "--seed" => args.seed = val.parse().expect("--seed"),
            "--engine" => {
                args.engines = val
                    .split(',')
                    .map(|e| EngineKind::parse(e).expect("--engine"))
                    .collect()
            }
            "--workers" => args.workers = val.parse().expect("--workers"),
            "--msgs" => args.msgs = val.parse().expect("--msgs"),
            "--family" => args.family = val.into(),
            other => panic!("unknown flag {other}"),
        }
        i += 2;
    }
    args
}

fn main() {
    let a = parse_args();

    let t0 = Instant::now();
    let g = match a.family.as_str() {
        "rr" => generators::random_regular(a.n, a.degree, a.seed),
        "harary" => generators::harary(a.degree, a.n),
        other => panic!("unknown family {other} (rr | harary)"),
    };
    let t_gen = t0.elapsed().as_secs_f64();
    println!(
        "instance: {} n={} m={} degree={} seed={} ({t_gen:.1}s)",
        a.family,
        g.n(),
        g.m(),
        a.degree,
        a.seed
    );

    // Stage 1: CDS packing (the parallel layer loop's worker knob).
    let cfg = CdsPackingConfig::with_known_k(a.degree, a.seed).with_workers(a.workers);
    let t0 = Instant::now();
    let packing = cds_packing(&g, &cfg);
    let t_cds = t0.elapsed().as_secs_f64();
    let excess0 = packing.trace.first().map(|l| l.excess_before).unwrap_or(0);
    println!(
        "cds_packing: t={} layers={} workers={} excess0={excess0} final_excess={} ({t_cds:.1}s)",
        packing.num_classes(),
        packing.layout.layers(),
        a.workers,
        packing.trace.last().map(|l| l.excess_after).unwrap_or(0),
    );

    // Stage 2: tree extraction.
    let t0 = Instant::now();
    let ex = to_dom_tree_packing(&g, &packing);
    let t_trees = t0.elapsed().as_secs_f64();
    println!(
        "tree_extract: trees={} invalid_classes={} ({t_trees:.1}s)",
        ex.packing.num_trees(),
        ex.invalid_classes.len()
    );
    assert!(
        ex.packing.num_trees() > 0,
        "pipeline needs at least one extracted tree"
    );

    // Stage 3: dissemination, swept over the requested engines on the
    // same instance and packing. Outputs are engine-independent (the
    // locality split aside); each line's digest-relevant columns must
    // therefore agree across engines.
    let origins: Vec<usize> = (0..a.msgs.min(g.n()))
        .map(|i| i * (g.n() / a.msgs.min(g.n()).max(1)))
        .collect();
    let mut blind_baseline: Option<(usize, usize)> = None;
    for &engine in &a.engines {
        let mut sim = Simulator::with_seed(&g, Model::VCongest, a.seed).with_engine(engine);
        let t0 = Instant::now();
        let r = gossip_protocol_on(
            &mut sim,
            &ex.packing,
            &origins,
            a.seed,
            GossipConfig::default(),
        )
        .expect("gossip protocol completes");
        let t_gossip = t0.elapsed().as_secs_f64();
        assert!(r.complete, "all origins must reach all nodes");
        let s = &r.stats;
        match blind_baseline {
            None => blind_baseline = Some((s.rounds, s.words)),
            Some(base) => assert_eq!(
                (s.rounds, s.words),
                base,
                "{engine}: rounds/words must be engine-independent"
            ),
        }
        println!(
            "gossip[{engine}]: msgs={} rounds={} words={} local_words={} cross_shard_words={} \
             ({:.1}% cross) peak_arena_words={} ({t_gossip:.1}s)",
            origins.len(),
            s.rounds,
            s.words,
            s.local_words,
            s.cross_shard_words,
            100.0 * s.cross_shard_words as f64 / s.words.max(1) as f64,
            s.peak_arena_words,
        );
    }

    println!(
        "stages[workers={}]: gen {t_gen:.1}s + cds {t_cds:.1}s + trees {t_trees:.1}s \
         (+ per-engine gossip above)",
        a.workers,
    );
}
