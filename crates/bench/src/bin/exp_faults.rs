//! E10 — fault & churn degradation curves: the Theorem 1.1 robustness
//! claim measured. A CDS packing of size ~k keeps gossip completing under
//! any `f < k` deletions; these tables record how the schedule degrades
//! as `f` grows — rounds and reassignments for the centralized schedule,
//! rounds and messages for the two-phase distributed repair protocol —
//! under both the seeded-random and the adversarial (highest-degree
//! first) fault policies.

use decomp_bench::table::{d, Table};
use decomp_broadcast::gossip::{gossip_via_trees_faulty, GossipConfig};
use decomp_broadcast::gossip_distributed::gossip_protocol_faulty;
use decomp_congest::{EngineKind, FaultPlan};
use decomp_core::cds::centralized::{cds_packing, CdsPackingConfig};
use decomp_core::cds::tree_extract::to_dom_tree_packing;
use decomp_core::packing::DomTreePacking;
use decomp_graph::{connectivity, generators, Graph};

fn instance(name: &str, g: Graph) -> (String, Graph, usize, DomTreePacking) {
    let k = connectivity::vertex_connectivity(&g);
    let p = cds_packing(&g, &CdsPackingConfig::with_known_k(k, 2));
    let trees = to_dom_tree_packing(&g, &p).packing;
    trees.validate(&g, 1e-9).unwrap();
    (name.to_string(), g, k, trees)
}

fn main() {
    let instances = [
        instance("harary", generators::harary(8, 40)),
        instance("random-regular", generators::random_regular(36, 6, 11)),
    ];

    // Centralized schedule: rounds and repair work vs f.
    let mut t = Table::new(
        "E10: schedule degradation vs f (vertex faults, rounds 2..6)",
        &[
            "family",
            "n",
            "k",
            "policy",
            "f",
            "rounds",
            "reassigned",
            "repair ev",
            "flood rds",
            "lost",
            "trees left",
        ],
    );
    for (name, g, k, trees) in &instances {
        let origins: Vec<usize> = (0..g.n()).collect();
        for f in 0..*k {
            let plans = [
                ("random", FaultPlan::random_vertices(g, f, (2, 6), 5)),
                ("worst", FaultPlan::worst_case_vertices(g, f, 2)),
            ];
            for (policy, plan) in plans {
                let r =
                    gossip_via_trees_faulty(g, trees, &origins, 5, GossipConfig::weighted(), &plan)
                        .unwrap();
                let reassigned: usize = r.degradation.iter().map(|s| s.reassigned_messages).sum();
                let trees_left = r
                    .degradation
                    .last()
                    .map_or(trees.num_trees(), |s| s.surviving_trees);
                t.row(&[
                    name.clone(),
                    d(g.n()),
                    d(*k),
                    policy.into(),
                    d(f),
                    d(r.rounds),
                    d(reassigned),
                    d(r.repair_events),
                    d(r.flood_rounds),
                    d(r.lost_messages),
                    d(trees_left),
                ]);
            }
        }
    }
    t.print();

    // Distributed two-phase repair: round and message cost vs f.
    let mut t2 = Table::new(
        "E10b: distributed repair protocol cost vs f",
        &[
            "family",
            "n",
            "k",
            "f",
            "rounds",
            "messages",
            "reinjected",
            "repair ev",
            "flood rds",
            "lost",
            "complete",
        ],
    );
    for (name, g, k, trees) in &instances {
        let origins: Vec<usize> = (0..g.n()).collect();
        for f in (0..*k).step_by(2) {
            let plan = FaultPlan::random_vertices(g, f, (2, 5), 5);
            let r = gossip_protocol_faulty(
                g,
                trees,
                &origins,
                5,
                GossipConfig::default(),
                &plan,
                EngineKind::Sequential,
            )
            .unwrap();
            t2.row(&[
                name.clone(),
                d(g.n()),
                d(*k),
                d(f),
                d(r.stats.rounds),
                d(r.stats.messages),
                d(r.reinjected),
                d(r.stats.repair_events),
                d(r.stats.flood_rounds),
                d(r.lost_messages),
                d(r.complete),
            ]);
        }
    }
    t2.print();
}
