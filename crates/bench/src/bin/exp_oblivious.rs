//! E7 — Corollary 1.6: oblivious routing broadcast congestion.
//!
//! Vertex congestion via dominating-tree packings should be
//! `O(log n)`-competitive against `N/k`; edge congestion via spanning-tree
//! packings `O(1)`-competitive against `N/λ`.

use decomp_bench::table::{d, f, Table};
use decomp_broadcast::oblivious::{edge_congestion, vertex_congestion};
use decomp_core::cds::centralized::{cds_packing, CdsPackingConfig};
use decomp_core::cds::tree_extract::to_dom_tree_packing;
use decomp_core::stp::mwu::{fractional_stp_mwu, MwuConfig};
use decomp_graph::connectivity::edge_connectivity;
use decomp_graph::generators;

fn main() {
    let workload = 5000;
    let mut t = Table::new(
        "E7a: oblivious vertex congestion (Cor 1.6)",
        &[
            "family",
            "n",
            "k",
            "max-cong",
            "opt(N/k)",
            "competitiveness",
            "log n",
        ],
    );
    for &(k, n) in &[(8usize, 48usize), (16, 64), (32, 96), (64, 160)] {
        let g = generators::harary(k, n);
        let p = cds_packing(&g, &CdsPackingConfig::with_known_k(k, 3));
        let trees = to_dom_tree_packing(&g, &p).packing;
        let r = vertex_congestion(&g, &trees, k, workload, 9);
        t.row(&[
            "harary".into(),
            d(n),
            d(k),
            f(r.max_congestion),
            f(r.opt_lower_bound),
            f(r.competitiveness),
            f((n as f64).log2()),
        ]);
    }
    // The sparse regime (t > 3L): classes become near-disjoint and the
    // competitiveness drops toward the O(log n) the theorem promises —
    // with heavily overlapping classes (rows above) it degenerates to k.
    for &(k, n, tcls) in &[(200usize, 400usize, 60usize), (400, 800, 100)] {
        let g = generators::harary(k, n);
        let cfg = decomp_core::cds::centralized::CdsPackingConfig {
            num_classes: tcls,
            layers_factor: 1.0,
            seed: 9,
            workers: 1,
        };
        let p = cds_packing(&g, &cfg);
        let trees = to_dom_tree_packing(&g, &p).packing;
        let r = vertex_congestion(&g, &trees, k, workload, 9);
        t.row(&[
            "harary-sparse".into(),
            d(n),
            d(k),
            f(r.max_congestion),
            f(r.opt_lower_bound),
            f(r.competitiveness),
            f((n as f64).log2()),
        ]);
    }
    t.print();

    let mut t2 = Table::new(
        "E7b: oblivious edge congestion (Cor 1.6)",
        &[
            "family",
            "n",
            "lambda",
            "max-cong",
            "opt(N/l)",
            "competitiveness",
        ],
    );
    for (name, g) in [
        ("harary", generators::harary(8, 32)),
        ("harary", generators::harary(12, 48)),
        ("complete", generators::complete(16)),
        ("hypercube", generators::hypercube(5)),
    ] {
        let lambda = edge_connectivity(&g);
        let packing = fractional_stp_mwu(&g, lambda, &MwuConfig::default()).packing;
        let r = edge_congestion(&g, &packing, lambda, workload, 13);
        t2.row(&[
            name.into(),
            d(g.n()),
            d(lambda),
            f(r.max_congestion),
            f(r.opt_lower_bound),
            f(r.competitiveness),
        ]);
    }
    t2.print();
}
