//! E11 — live-churn degradation curves (PR 9): mid-run arrivals plus
//! deletions, tree re-extraction between waves, and the cost of the
//! flood fallback. Three tables:
//!
//! * C1 — rounds / wasted bandwidth vs churn rate for the three gossip
//!   regimes (uniform, weighted, RLNC) under alternating kill/arrive
//!   plans on a static packing (no re-extraction: the price of faults
//!   repaired only by reseeding);
//! * C2 — the wave-loop scheduler (`gossip_under_churn`), which
//!   re-extracts the touched classes' trees between waves: flood rounds
//!   stay bounded per wave instead of accumulating;
//! * C3 — the distributed two-phase churn protocol
//!   (`gossip_protocol_churn`) on the sequential engine.
//!
//! E12 (PR 10) — settled vs growth admission: newcomers whose adjacency
//! is revealed only at the arrival round. The settled run serves the
//! class-free arrivals through the flood fallback; the growth run
//! (`gossip_under_growth`) admits them into the packing through the
//! maintained aggregates and serves them from the trees.

use decomp_bench::table::{d, Table};
use decomp_broadcast::churn::{gossip_under_churn, gossip_under_growth};
use decomp_broadcast::gossip::{gossip_via_trees_faulty, GossipConfig};
use decomp_broadcast::gossip_distributed::gossip_protocol_churn;
use decomp_congest::{EngineKind, Fault, FaultPlan, ScheduledFault};
use decomp_core::cds::centralized::{cds_packing_with_state, CdsPackingConfig};
use decomp_core::cds::tree_extract::to_dom_tree_packing_with_state;
use decomp_graph::{connectivity, generators, Graph};

/// Alternating churn: `c` kills and `c` arrivals on disjoint vertex
/// sets, interleaved every other round from round 2 on.
fn churn_plan(g: &Graph, c: usize) -> FaultPlan {
    let n = g.n();
    let mut events = Vec::new();
    for i in 0..c {
        events.push(ScheduledFault {
            round: 2 + 4 * i,
            fault: Fault::Vertex(1 + i),
        });
        events.push(ScheduledFault {
            round: 4 + 4 * i,
            fault: Fault::AddVertex(n - 1 - i),
        });
    }
    FaultPlan::new(events)
}

/// Origins untouched by the plan (a killed origin may legitimately
/// lose its not-yet-relayed message; keep the curves about repair).
fn stable_origins(g: &Graph, c: usize) -> Vec<usize> {
    let n = g.n();
    (0..n)
        .filter(|&v| !(1..=c).contains(&v) && v < n - c)
        .collect()
}

fn main() {
    let instances = [
        ("harary", generators::harary(8, 48)),
        ("random-regular", generators::random_regular(40, 8, 11)),
    ];

    // C1 — static packing, repair by reseed only, all three regimes.
    let mut t1 = Table::new(
        "E11/C1: regimes under alternating churn (static packing)",
        &[
            "family",
            "regime",
            "churn",
            "rounds",
            "wasted",
            "repair ev",
            "flood rds",
            "lost",
        ],
    );
    for (name, g) in &instances {
        let k = connectivity::vertex_connectivity(g);
        let (cds, state) = cds_packing_with_state(g, &CdsPackingConfig::with_known_k(k, 2));
        let trees = to_dom_tree_packing_with_state(g, &cds, &state).packing;
        for c in [0usize, 1, 2, 3] {
            let plan = churn_plan(g, c);
            let origins = stable_origins(g, c);
            for (regime, config) in [
                ("uniform", GossipConfig::default()),
                ("weighted", GossipConfig::weighted()),
                ("rlnc", GossipConfig::rlnc(8, 7)),
            ] {
                let r = gossip_via_trees_faulty(g, &trees, &origins, 5, config, &plan).unwrap();
                t1.row(&[
                    name.to_string(),
                    regime.into(),
                    d(2 * c),
                    d(r.rounds),
                    d(r.wasted_bandwidth),
                    d(r.repair_events),
                    d(r.flood_rounds),
                    d(r.lost_messages),
                ]);
            }
        }
    }
    t1.print();

    // C2 — the wave loop: trees re-extracted between waves.
    let mut t2 = Table::new(
        "E11/C2: gossip_under_churn (re-extraction between waves)",
        &[
            "family",
            "churn",
            "rounds",
            "waves",
            "reextracted",
            "repair ev",
            "flood rds",
            "certified",
            "complete",
        ],
    );
    for (name, g) in &instances {
        let k = connectivity::vertex_connectivity(g);
        for c in [0usize, 1, 2, 3] {
            let (cds, mut state) = cds_packing_with_state(g, &CdsPackingConfig::with_known_k(k, 2));
            let plan = churn_plan(g, c);
            let origins = stable_origins(g, c);
            let r = gossip_under_churn(g, &cds, &mut state, &origins, 5, &plan).unwrap();
            let certified = r
                .waves
                .last()
                .map_or(cds.num_classes(), |w| w.certified_trees);
            t2.row(&[
                name.to_string(),
                d(2 * c),
                d(r.rounds),
                d(r.waves.len()),
                d(r.reextractions),
                d(r.repair_events),
                d(r.flood_rounds),
                d(certified),
                d(r.complete),
            ]);
        }
    }
    t2.print();

    // C3 — the distributed two-phase churn protocol.
    let mut t3 = Table::new(
        "E11/C3: distributed churn protocol (sequential engine)",
        &[
            "family",
            "churn",
            "rounds",
            "messages",
            "reinjected",
            "reextracted",
            "certified",
            "complete",
        ],
    );
    for (name, g) in &instances {
        let k = connectivity::vertex_connectivity(g);
        for c in [0usize, 1, 2, 3] {
            let (cds, mut state) = cds_packing_with_state(g, &CdsPackingConfig::with_known_k(k, 2));
            let plan = churn_plan(g, c);
            let origins = stable_origins(g, c);
            let r = gossip_protocol_churn(
                g,
                &cds,
                &mut state,
                &origins,
                5,
                GossipConfig::default(),
                &plan,
                EngineKind::Sequential,
            )
            .unwrap();
            t3.row(&[
                name.to_string(),
                d(2 * c),
                d(r.stats.rounds),
                d(r.stats.messages),
                d(r.reinjected),
                d(r.reextractions),
                d(r.certified_classes),
                d(r.complete),
            ]);
        }
    }
    t3.print();

    // E12 — settled vs growth admission. The packing predates the
    // newcomers: built over the final topology, then the newcomers
    // evicted, their edges living only in the growth overlay.
    let mut t4 = Table::new(
        "E12: settled vs growth admission (adjacency revealed at arrival)",
        &[
            "family",
            "newcomers",
            "mode",
            "rounds",
            "admitted",
            "flood srv",
            "flood rds",
            "complete",
        ],
    );
    for (name, g) in &instances {
        let k = connectivity::vertex_connectivity(g);
        let n = g.n();
        for c in [1usize, 2, 3] {
            let newcomers: Vec<usize> = (n - c..n).collect();
            let base = Graph::from_edges(
                n,
                (0..n).flat_map(|u| {
                    g.neighbors(u)
                        .iter()
                        .filter(move |&&v| u < v && u < n - c && v < n - c)
                        .map(move |&v| (u, v))
                }),
            );
            let mut events = Vec::new();
            for (i, &v) in newcomers.iter().enumerate() {
                let round = 4 + 3 * i;
                events.push(ScheduledFault {
                    round,
                    fault: Fault::AddVertex(v),
                });
                for &u in g.neighbors(v) {
                    // An edge between two newcomers activates at the
                    // later arrival.
                    if newcomers
                        .iter()
                        .position(|&x| x == u)
                        .is_some_and(|j| j > i)
                    {
                        continue;
                    }
                    events.push(ScheduledFault {
                        round,
                        fault: Fault::AddEdge(v, u),
                    });
                }
            }
            let plan = FaultPlan::new(events);
            let gg = plan.growth_topology(&base);
            let origins: Vec<usize> = (0..n - c).collect();
            for growth in [false, true] {
                let (mut cds, mut st) =
                    cds_packing_with_state(g, &CdsPackingConfig::with_known_k(k, 2));
                for &v in &newcomers {
                    for cl in st.delete_vertex(g, v) {
                        let ms = &mut cds.classes[cl as usize];
                        if let Ok(i) = ms.binary_search(&v) {
                            ms.remove(i);
                        }
                    }
                }
                let r = if growth {
                    gossip_under_growth(&gg, &cds, &mut st, &origins, 5, &plan).unwrap()
                } else {
                    gossip_under_churn(g, &cds, &mut st, &origins, 5, &plan).unwrap()
                };
                t4.row(&[
                    name.to_string(),
                    d(c),
                    if growth { "growth" } else { "settled" }.into(),
                    d(r.rounds),
                    d(r.admitted_via_packing),
                    d(r.flood_served),
                    d(r.flood_rounds),
                    d(r.complete),
                ]);
            }
        }
    }
    t4.print();
}
