//! E9 — Corollary A.1: gossiping `N` messages (≤ η per node) completes in
//! `O~(η + (N + n)/k)` rounds via the dominating-tree packing. Each
//! workload runs under all three schedules: the integral reading
//! (uniform tree choice, greedy relaying), the fractional regime
//! (weight-proportional choice + weighted time-sharing, Theorem 1.1),
//! and the network-coded regime (seeded-random GF(2⁸) combinations per
//! generation — beyond the paper; see `broadcast::rlnc`).

use decomp_bench::packings::disjoint_pair_packing;
use decomp_bench::table::{d, f, Table};
use decomp_broadcast::gossip::{gossip_single_tree_baseline, gossip_via_trees_with, GossipConfig};
use decomp_core::cds::centralized::{cds_packing, CdsPackingConfig};
use decomp_core::cds::tree_extract::to_dom_tree_packing;
use decomp_graph::generators;

fn main() {
    let configs = [
        ("uniform", GossipConfig::default()),
        ("weighted", GossipConfig::weighted()),
        ("rlnc", GossipConfig::rlnc(8, 5)),
    ];
    let mut t = Table::new(
        "E9: gossiping (Cor A.1)",
        &[
            "family",
            "n",
            "k",
            "N",
            "eta",
            "sched",
            "rounds",
            "baseline",
            "bound eta+(N+n)/k",
        ],
    );
    // Constructed packings.
    for &(k, n, mult) in &[(8usize, 48usize, 1usize), (16, 64, 2), (16, 64, 4)] {
        let g = generators::harary(k, n);
        let p = cds_packing(&g, &CdsPackingConfig::with_known_k(k, 2));
        let trees = to_dom_tree_packing(&g, &p).packing;
        trees.validate(&g, 1e-9).unwrap();
        let origins: Vec<usize> = (0..mult * n).map(|i| i % n).collect();
        let base = gossip_single_tree_baseline(&g, &origins, 5);
        let bound = mult as f64 + (origins.len() + n) as f64 / k as f64;
        for (sched, config) in configs {
            let r = gossip_via_trees_with(&g, &trees, &origins, 5, config);
            t.row(&[
                "harary".into(),
                d(n),
                d(k),
                d(origins.len()),
                d(mult),
                sched.into(),
                d(r.rounds),
                d(base.rounds),
                f(bound),
            ]);
        }
    }
    // Vertex-disjoint pair trees (the k >> log n regime).
    for &tcount in &[8usize, 16] {
        let n = 96;
        let g = generators::complete_bipartite(tcount, n - tcount);
        let packing = disjoint_pair_packing(&g, tcount);
        let origins: Vec<usize> = (0..4 * n).map(|i| i % n).collect();
        let base = gossip_single_tree_baseline(&g, &origins, 5);
        let bound = 4.0 + (origins.len() + n) as f64 / tcount as f64;
        for (sched, config) in configs {
            let r = gossip_via_trees_with(&g, &packing, &origins, 5, config);
            t.row(&[
                "disjoint-pairs".into(),
                d(n),
                d(tcount),
                d(origins.len()),
                d(4),
                sched.into(),
                d(r.rounds),
                d(base.rounds),
                f(bound),
            ]);
        }
    }
    t.print();

    // Cross-validation: the schedule-level simulation vs the real
    // V-CONGEST protocol on the same workload, per tree-choice policy.
    let mut t2 = Table::new(
        "E9b: schedule simulation vs message-passing protocol",
        &[
            "family",
            "n",
            "N",
            "sched",
            "schedule rounds",
            "protocol rounds",
            "complete",
        ],
    );
    let g = generators::harary(8, 48);
    let p = cds_packing(&g, &CdsPackingConfig::with_known_k(8, 2));
    let trees = to_dom_tree_packing(&g, &p).packing;
    trees.validate(&g, 1e-9).unwrap();
    let origins: Vec<usize> = (0..g.n()).collect();
    for (sched, config) in configs {
        let sched_r = gossip_via_trees_with(&g, &trees, &origins, 5, config);
        let proto = decomp_broadcast::gossip_distributed::gossip_protocol_with(
            &g, &trees, &origins, 5, config,
        )
        .unwrap();
        t2.row(&[
            "harary".into(),
            d(g.n()),
            d(origins.len()),
            sched.into(),
            d(sched_r.rounds),
            d(proto.stats.rounds),
            d(proto.complete),
        ]);
    }
    t2.print();
}
