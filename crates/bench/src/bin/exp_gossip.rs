//! E9 — Corollary A.1: gossiping `N` messages (≤ η per node) completes in
//! `O~(η + (N + n)/k)` rounds via the dominating-tree packing.

use decomp_bench::table::{d, f, Table};
use decomp_broadcast::gossip::{gossip_single_tree_baseline, gossip_via_trees};
use decomp_core::cds::centralized::{cds_packing, CdsPackingConfig};
use decomp_core::cds::tree_extract::to_dom_tree_packing;
use decomp_core::packing::{DomTreePacking, WeightedDomTree};
use decomp_graph::generators;

fn main() {
    let mut t = Table::new(
        "E9: gossiping (Cor A.1)",
        &[
            "family",
            "n",
            "k",
            "N",
            "eta",
            "rounds",
            "baseline",
            "bound eta+(N+n)/k",
        ],
    );
    // Constructed packings.
    for &(k, n, mult) in &[(8usize, 48usize, 1usize), (16, 64, 2), (16, 64, 4)] {
        let g = generators::harary(k, n);
        let p = cds_packing(&g, &CdsPackingConfig::with_known_k(k, 2));
        let trees = to_dom_tree_packing(&g, &p).packing;
        let origins: Vec<usize> = (0..mult * n).map(|i| i % n).collect();
        let r = gossip_via_trees(&g, &trees, &origins, 5);
        let base = gossip_single_tree_baseline(&g, &origins, 5);
        let bound = mult as f64 + (origins.len() + n) as f64 / k as f64;
        t.row(&[
            "harary".into(),
            d(n),
            d(k),
            d(origins.len()),
            d(mult),
            d(r.rounds),
            d(base.rounds),
            f(bound),
        ]);
    }
    // Vertex-disjoint pair trees (the k >> log n regime).
    for &tcount in &[8usize, 16] {
        let n = 96;
        let g = generators::complete_bipartite(tcount, n - tcount);
        let packing = DomTreePacking {
            trees: (0..tcount)
                .map(|i| WeightedDomTree {
                    id: i,
                    weight: 1.0,
                    edges: vec![(i, tcount + i)],
                    singleton: None,
                })
                .collect(),
        };
        let origins: Vec<usize> = (0..4 * n).map(|i| i % n).collect();
        let r = gossip_via_trees(&g, &packing, &origins, 5);
        let base = gossip_single_tree_baseline(&g, &origins, 5);
        let bound = 4.0 + (origins.len() + n) as f64 / tcount as f64;
        t.row(&[
            "disjoint-pairs".into(),
            d(n),
            d(tcount),
            d(origins.len()),
            d(4),
            d(r.rounds),
            d(base.rounds),
            f(bound),
        ]);
    }
    t.print();

    // Cross-validation: the schedule-level simulation vs the real
    // V-CONGEST protocol on the same workload.
    let mut t2 = Table::new(
        "E9b: schedule simulation vs message-passing protocol",
        &[
            "family",
            "n",
            "N",
            "schedule rounds",
            "protocol rounds",
            "complete",
        ],
    );
    let g = generators::harary(8, 48);
    let p = cds_packing(&g, &CdsPackingConfig::with_known_k(8, 2));
    let trees = to_dom_tree_packing(&g, &p).packing;
    let origins: Vec<usize> = (0..g.n()).collect();
    let sched = gossip_via_trees(&g, &trees, &origins, 5);
    let proto =
        decomp_broadcast::gossip_distributed::gossip_protocol(&g, &trees, &origins, 5).unwrap();
    t2.row(&[
        "harary".into(),
        d(g.n()),
        d(origins.len()),
        d(sched.rounds),
        d(proto.stats.rounds),
        d(proto.complete),
    ]);
    t2.print();
}
