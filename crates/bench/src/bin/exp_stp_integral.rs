//! E5 — Integral spanning-tree packings of size `Ω(λ / log n)`
//! (Section 1.2, "Integral Tree Packings"): random edge partition into
//! `Θ(λ / log n)` groups, one spanning tree per connected group.

use decomp_bench::table::{d, f, Table};
use decomp_core::stp::integral::{check_integral_stp, integral_stp};
use decomp_graph::connectivity::edge_connectivity;
use decomp_graph::generators;

fn main() {
    let mut t = Table::new(
        "E5: integral packing (Ω(λ/log n))",
        &[
            "family",
            "n",
            "lambda",
            "eta",
            "trees",
            "failed",
            "lambda/logn",
        ],
    );
    let cases: Vec<(&str, decomp_graph::Graph)> = vec![
        ("complete", generators::complete(24)),
        ("complete", generators::complete(48)),
        ("complete", generators::complete(96)),
        ("harary", generators::harary(24, 64)),
        ("harary", generators::harary(48, 96)),
        ("rand-reg", generators::random_regular(64, 24, 5)),
    ];
    for (name, g) in cases {
        let lambda = edge_connectivity(&g);
        let r = integral_stp(&g, lambda, 2.0, 11);
        check_integral_stp(&g, &r.trees).expect("edge-disjoint spanning trees");
        let logn = (g.n() as f64).log2();
        t.row(&[
            name.to_string(),
            d(g.n()),
            d(lambda),
            d(r.groups),
            d(r.trees.len()),
            d(r.failed_groups),
            f(lambda as f64 / logn),
        ]);
    }
    t.print();
}
