//! E13 — "Integral Tree Packings" (Section 1.2) and the vertex-independent
//! tree connection (Section 1.4.1): vertex-disjoint dominating trees via
//! random layering, converted into independent spanning trees.

use decomp_bench::table::{d, Table};
use decomp_core::cds::independent::{check_independent, independent_trees};
use decomp_core::cds::integral::{check_vertex_disjoint, integral_cds_packing};
use decomp_graph::generators;

fn main() {
    let mut t = Table::new(
        "E13: integral CDS packing + independent trees (Sec 1.2 / 1.4.1)",
        &[
            "family",
            "n",
            "k",
            "kappa(1/2)",
            "groups",
            "disjoint trees",
            "failed",
            "independent ok",
        ],
    );
    let cases: Vec<(&str, decomp_graph::Graph, usize, usize)> = vec![
        ("complete", generators::complete(64), 63, 8),
        ("harary", generators::harary(32, 96), 32, 4),
        ("harary", generators::harary(48, 128), 48, 6),
        ("harary", generators::harary(64, 160), 64, 8),
    ];
    for (name, g, k, groups) in cases {
        // The paper's κ: connectivity surviving 1/2-vertex-sampling
        // ([12]: κ = Ω(k/log³ n); integral packings have size Ω(κ/log² n)).
        let kappa = decomp_graph::sample::sampled_vertex_connectivity(&g, 2, 11);
        let r = integral_cds_packing(&g, groups, 7);
        check_vertex_disjoint(&g, &r.packing).expect("vertex-disjoint");
        r.packing
            .validate(&g, 1e-9)
            .expect("feasible integral packing");
        let indep_ok = if r.packing.num_trees() >= 1 {
            let trees = independent_trees(&g, &r.packing, 0);
            check_independent(&trees, 0).is_ok()
        } else {
            false
        };
        t.row(&[
            name.into(),
            d(g.n()),
            d(k),
            d(kappa),
            d(r.groups),
            d(r.packing.num_trees()),
            d(r.failed_groups),
            d(indep_ok),
        ]);
    }
    t.print();

    // Greedy spanning-tree baseline vs the guaranteed count, for contrast
    // with E5's integral spanning trees.
    let mut t2 = Table::new(
        "E13b: greedy edge-disjoint spanning trees (baseline)",
        &["family", "n", "lambda", "greedy trees", "TNW bound"],
    );
    for (name, g) in [
        ("complete", generators::complete(16)),
        ("harary", generators::harary(8, 32)),
        ("harary", generators::harary(12, 48)),
    ] {
        let lambda = decomp_graph::connectivity::edge_connectivity(&g);
        let trees = decomp_core::stp::greedy::greedy_stp(&g, 3);
        t2.row(&[
            name.into(),
            d(g.n()),
            d(lambda),
            d(trees.len()),
            d(((lambda as f64 - 1.0) / 2.0).ceil() as usize),
        ]);
    }
    t2.print();
}
