//! E3 — Theorem 1.1: distributed CDS-packing round complexity, against
//! the paper's `O~(min{D + √n, n/k})` upper bound and the `Ω~(D + √n/k)`
//! lower bound (Theorem G.2).
//!
//! Measured rounds come from the label-propagation substitute for
//! Thurimella's component identification (DESIGN.md §3), so the columns
//! show both the measured simulator rounds and the charged theoretical
//! formulas evaluated on the same instance.

use decomp_bench::table::{d, f, Table};
use decomp_congest::{Model, Simulator};
use decomp_core::cds::centralized::CdsPackingConfig;
use decomp_core::cds::distributed::cds_packing_distributed;
use decomp_graph::{generators, traversal};

fn main() {
    let engine = decomp_bench::cli::engine_from_args();
    let mut t = Table::new(
        &format!("E3: distributed rounds (Thm 1.1) [engine={engine}]"),
        &[
            "family",
            "n",
            "D",
            "k",
            "rounds",
            "msgs",
            "D+sqrt(n)",
            "lb D+sqrt(n)/k",
        ],
    );
    let cases: Vec<(&str, decomp_graph::Graph, usize)> = vec![
        ("harary", generators::harary(8, 32), 8),
        ("harary", generators::harary(8, 64), 8),
        ("harary", generators::harary(8, 128), 8),
        ("harary", generators::harary(16, 128), 16),
        ("thickpath", generators::thick_path(4, 8), 4),
        ("thickpath", generators::thick_path(4, 16), 4),
        ("hypercube", generators::hypercube(6), 6),
    ];
    for (name, g, k) in cases {
        let n = g.n();
        let diam = traversal::diameter(&g).unwrap();
        let mut sim = Simulator::new(&g, Model::VCongest).with_engine(engine);
        let packing =
            cds_packing_distributed(&mut sim, &CdsPackingConfig::with_known_k(k, 3)).unwrap();
        assert!(packing.num_classes() >= 1);
        let stats = sim.stats();
        let sqrt_n = (n as f64).sqrt();
        t.row(&[
            name.to_string(),
            d(n),
            d(diam),
            d(k),
            d(stats.rounds),
            d(stats.messages),
            f(diam as f64 + sqrt_n),
            f(diam as f64 + sqrt_n / k as f64),
        ]);
    }
    t.print();
}
