//! Hand-built packings the experiment binaries share.

use decomp_core::packing::{DomTreePacking, WeightedDomTree};
use decomp_graph::Graph;

/// Vertex-disjoint pair trees on `K_{t, n−t}`: tree `i` is the edge
/// `(left_i, right_i)`, and distinct pairs are disjoint — the
/// k ≫ log n regime of Corollary 1.4. Weighted feasibly through the
/// same `1/max-multiplicity` rule `to_dom_tree_packing` applies (1.0
/// here — the pairs are disjoint) and validated against `g`.
///
/// # Panics
/// Panics if `g` is not the matching complete bipartite graph (the
/// validation rejects non-dominating pairs).
pub fn disjoint_pair_packing(g: &Graph, tcount: usize) -> DomTreePacking {
    let mut packing = DomTreePacking {
        trees: (0..tcount)
            .map(|i| WeightedDomTree {
                id: i,
                weight: 1.0,
                edges: vec![(i, tcount + i)],
                singleton: None,
            })
            .collect(),
    };
    packing.assign_uniform_feasible_weights(g.n());
    packing.validate(g, 1e-9).unwrap();
    packing
}
