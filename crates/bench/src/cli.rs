//! Shared command-line parsing for the `exp_*` binaries.

use decomp_congest::EngineKind;

/// Parses the `--engine` flag (`--engine sharded:4` or `--engine=sharded:4`)
/// from the process arguments; falls back to the `DECOMP_ENGINE`
/// environment variable, then to the sequential engine.
///
/// Engine choice never changes experiment outputs — the engines are
/// bit-for-bit equivalent (see `decomp_congest::engine`) — only wall-clock
/// behavior, so tables stay comparable across runs.
///
/// # Panics
/// Panics with a usage message on a malformed engine spec or a missing
/// flag value, so experiment runs fail loudly instead of silently timing
/// the wrong backend.
pub fn engine_from_args() -> EngineKind {
    let parse = |spec: &str| {
        EngineKind::parse(spec).unwrap_or_else(|e| panic!("--engine / DECOMP_ENGINE: {e}"))
    };
    let mut engine = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--engine" {
            let value = args.next().expect("--engine requires a value");
            engine = Some(parse(&value));
        } else if let Some(value) = arg.strip_prefix("--engine=") {
            engine = Some(parse(value));
        }
    }
    // The env var is only a fallback: left unparsed (and unjudged) when
    // an explicit flag is present.
    engine
        .or_else(|| std::env::var("DECOMP_ENGINE").ok().map(|spec| parse(&spec)))
        .unwrap_or(EngineKind::Sequential)
}
