//! # decomp-bench
//!
//! Experiment harness for the reproduction: one binary per paper claim
//! (see `EXPERIMENTS.md` at the workspace root for the index), plus
//! criterion benches for runtime scaling.
//!
//! Run an experiment with e.g.
//! `cargo run --release -p decomp-bench --bin exp_cds_packing`.

pub mod table;
