//! # decomp-bench
//!
//! Experiment harness for the reproduction: one binary per paper claim
//! (see `EXPERIMENTS.md` at the workspace root for the index), plus
//! criterion benches for runtime scaling.
//!
//! Run an experiment with e.g.
//! `cargo run --release -p decomp-bench --bin exp_cds_packing`.
//!
//! Simulator-driven experiments accept `--engine
//! <sequential|sharded[:N]>` (or the `DECOMP_ENGINE` environment
//! variable) to select the round-execution backend; outputs are
//! engine-independent by the determinism contract of
//! `decomp_congest::engine`.

pub mod cli;
pub mod packings;
pub mod table;
