//! Minimal fixed-width table printer shared by the experiment binaries.
//!
//! Every experiment prints (a) a human-readable table and (b) one JSON
//! line per row (for downstream plotting), in the format
//! `{"experiment": ..., "row": {...}}`.
//!
//! JSON is emitted by a hand-rolled escaper rather than serde: the build
//! environment has no crates registry, and the only values serialized
//! here are strings and displayable scalars.

/// Escapes `s` as the contents of a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// A quoted JSON string literal for `s`.
fn json_string(s: &str) -> String {
    format!("\"{}\"", json_escape(s))
}

/// A table under construction.
#[derive(Debug)]
pub struct Table {
    experiment: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// A new table for `experiment` with the given column headers.
    pub fn new(experiment: &str, headers: &[&str]) -> Self {
        Table {
            experiment: experiment.to_string(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (stringified cells; must match the header count).
    ///
    /// # Panics
    /// Panics on column-count mismatch.
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.headers.len(), "column count mismatch");
        self.rows.push(cells.to_vec());
    }

    /// Prints the table and the per-row JSON lines to stdout.
    pub fn print(&self) {
        let widths: Vec<usize> = self
            .headers
            .iter()
            .enumerate()
            .map(|(i, h)| {
                self.rows
                    .iter()
                    .map(|r| r[i].len())
                    .chain([h.len()])
                    .max()
                    .unwrap_or(0)
            })
            .collect();
        println!("\n== {} ==", self.experiment);
        let fmt_row = |cells: &[String]| {
            cells
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        println!("{}", fmt_row(&self.headers));
        println!(
            "{}",
            "-".repeat(widths.iter().sum::<usize>() + 2 * widths.len())
        );
        for r in &self.rows {
            println!("{}", fmt_row(r));
        }
        for r in &self.rows {
            let obj = self
                .headers
                .iter()
                .zip(r)
                .map(|(h, c)| format!("{}: {}", json_string(h), json_string(c)))
                .collect::<Vec<_>>()
                .join(", ");
            println!(
                "JSON {{\"experiment\": {}, \"row\": {{{obj}}}}}",
                json_string(&self.experiment)
            );
        }
    }
}

/// Formats a float with 3 decimals.
pub fn f(x: f64) -> String {
    format!("{x:.3}")
}

/// Formats an integer-valued cell.
pub fn d(x: impl std::fmt::Display) -> String {
    format!("{x}")
}

/// Serializes a displayable value to one JSON line with an experiment
/// tag. Finite numbers are emitted verbatim; everything else (strings,
/// NaN, infinities) is emitted as an escaped JSON string so the line
/// always parses.
pub fn json_line<T: std::fmt::Display>(experiment: &str, value: &T) -> String {
    let raw = value.to_string();
    let data = match raw.parse::<f64>() {
        Ok(x) if x.is_finite() => raw,
        _ => json_string(&raw),
    };
    format!(
        "{{\"experiment\": {}, \"data\": {data}}}",
        json_string(experiment)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_roundtrip() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.row(&[d(1), f(2.5)]);
        t.print();
        assert_eq!(t.rows.len(), 1);
    }

    #[test]
    #[should_panic(expected = "column count")]
    fn mismatched_row_panics() {
        let mut t = Table::new("demo", &["a"]);
        t.row(&[d(1), d(2)]);
    }

    #[test]
    fn json_line_contains_tag() {
        let line = json_line("exp", &42);
        assert!(line.contains("\"exp\""));
        assert!(line.contains("42"));
    }

    #[test]
    fn json_line_quotes_non_numeric_values() {
        assert_eq!(
            json_line("exp", &"harary"),
            "{\"experiment\": \"exp\", \"data\": \"harary\"}"
        );
        assert_eq!(
            json_line("exp", &f64::NAN),
            "{\"experiment\": \"exp\", \"data\": \"NaN\"}"
        );
    }

    #[test]
    fn escaping_is_json_safe() {
        assert_eq!(json_string("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(json_string("\u{1}"), "\"\\u0001\"");
    }
}
