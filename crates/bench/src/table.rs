//! Minimal fixed-width table printer shared by the experiment binaries.
//!
//! Every experiment prints (a) a human-readable table and (b) one JSON
//! line per row (for downstream plotting), in the format
//! `{"experiment": ..., "row": {...}}`.

use serde::Serialize;

/// A table under construction.
#[derive(Debug)]
pub struct Table {
    experiment: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// A new table for `experiment` with the given column headers.
    pub fn new(experiment: &str, headers: &[&str]) -> Self {
        Table {
            experiment: experiment.to_string(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (stringified cells; must match the header count).
    ///
    /// # Panics
    /// Panics on column-count mismatch.
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.headers.len(), "column count mismatch");
        self.rows.push(cells.to_vec());
    }

    /// Prints the table and the per-row JSON lines to stdout.
    pub fn print(&self) {
        let widths: Vec<usize> = self
            .headers
            .iter()
            .enumerate()
            .map(|(i, h)| {
                self.rows
                    .iter()
                    .map(|r| r[i].len())
                    .chain([h.len()])
                    .max()
                    .unwrap_or(0)
            })
            .collect();
        println!("\n== {} ==", self.experiment);
        let fmt_row = |cells: &[String]| {
            cells
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        println!("{}", fmt_row(&self.headers));
        println!("{}", "-".repeat(widths.iter().sum::<usize>() + 2 * widths.len()));
        for r in &self.rows {
            println!("{}", fmt_row(r));
        }
        for r in &self.rows {
            let obj: serde_json::Map<String, serde_json::Value> = self
                .headers
                .iter()
                .zip(r)
                .map(|(h, c)| (h.clone(), serde_json::Value::String(c.clone())))
                .collect();
            let line = serde_json::json!({"experiment": self.experiment, "row": obj});
            println!("JSON {line}");
        }
    }
}

/// Formats a float with 3 decimals.
pub fn f(x: f64) -> String {
    format!("{x:.3}")
}

/// Formats an integer-valued cell.
pub fn d(x: impl std::fmt::Display) -> String {
    format!("{x}")
}

/// Serializes any value to one JSON line with an experiment tag.
pub fn json_line<T: Serialize>(experiment: &str, value: &T) -> String {
    serde_json::json!({"experiment": experiment, "data": value}).to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_roundtrip() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.row(&[d(1), f(2.5)]);
        t.print();
        assert_eq!(t.rows.len(), 1);
    }

    #[test]
    #[should_panic(expected = "column count")]
    fn mismatched_row_panics() {
        let mut t = Table::new("demo", &["a"]);
        t.row(&[d(1), d(2)]);
    }

    #[test]
    fn json_line_contains_tag() {
        let line = json_line("exp", &42);
        assert!(line.contains("\"exp\""));
        assert!(line.contains("42"));
    }
}
