//! Release-gated regression pin for the coded-gossip regime at scale.
//!
//! All-node gossip on the rr10k workload (`random_regular(10⁴, 16, 1)`
//! with the CDS-derived packing) must finish **no later than the
//! fractional tree schedule** — weighted time-sharing takes 9804 rounds
//! here (see BENCH_SIM.md), and coded relaying exists precisely to beat
//! tree convoying on member-dense packings. The run also prints the
//! redundancy price (`wasted_bandwidth`, non-innovative deliveries) and
//! the peak schedule footprint so BENCH_SIM.md rows can be refreshed
//! from the test output verbatim.
//!
//! Debug builds skip this (the GF(2⁸) elimination over 10⁴ × 10⁴
//! symbols is a release-scale workload); CI runs it in the release lane
//! alongside the other scale checks.

use decomp_broadcast::gossip::{gossip_via_trees_with, GossipConfig};
use decomp_core::cds::centralized::{cds_packing, CdsPackingConfig};
use decomp_core::cds::tree_extract::to_dom_tree_packing;
use decomp_graph::generators;

const N: usize = 10_000;
const DEGREE: usize = 16;
/// The fractional (weighted time-sharing) schedule's round count on this
/// exact workload — the bound coded gossip must not exceed.
const WEIGHTED_ROUNDS: usize = 9804;

#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "release-scale workload; run with --release (CI release lane)"
)]
fn rlnc_beats_weighted_trees_on_rr10k() {
    let g = generators::random_regular(N, DEGREE, 1);
    let p = cds_packing(&g, &CdsPackingConfig::with_known_k(DEGREE, 5));
    let packing = to_dom_tree_packing(&g, &p).packing;
    let origins: Vec<usize> = (0..N).collect();
    let r = gossip_via_trees_with(&g, &packing, &origins, 7, GossipConfig::rlnc(16, 7));
    println!(
        "rr_n10k_d16/cds rlnc(g=16): rounds={} wasted_bandwidth={} peak_state_words={}",
        r.rounds, r.wasted_bandwidth, r.peak_state_words
    );
    assert_eq!(r.num_messages, N);
    assert_eq!(r.lost_messages, 0);
    assert!(
        r.rounds <= WEIGHTED_ROUNDS,
        "coded gossip took {} rounds — slower than the {WEIGHTED_ROUNDS}-round \
         weighted tree schedule it exists to beat",
        r.rounds
    );
}
