//! Criterion bench: engine comparison on the round loop itself.
//!
//! A 10⁴-node random-regular instance (the scale the ROADMAP's
//! million-node trajectory passes through next) drives two workloads per
//! engine:
//!
//! * `gossip16` — 16 rounds of all-node local gossip with per-word mixing
//!   on receive: the compute-bound regime where the sharded engine's
//!   worker pool pays off (one shard per core);
//! * `bfs` — distributed BFS from node 0: the communication-bound,
//!   few-round regime that mostly measures engine overhead.
//!
//! Engines are bit-for-bit equivalent (asserted here on the gossip
//! digest), so the numbers compare wall-clock only. Track results in
//! `BENCH_SIM.md` at the workspace root.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use decomp_congest::bfs::distributed_bfs;
use decomp_congest::{EngineKind, Inbox, Message, Model, NodeCtx, NodeProgram, Simulator};
use decomp_graph::{generators, Graph};
use rand::Rng;

const N: usize = 10_000;
const DEGREE: usize = 8;
const GOSSIP_ROUNDS: usize = 16;

/// Every node gossips a random word each round and folds received words
/// through a few SplitMix-style rounds — stand-in for real per-message
/// program work (table updates, component bookkeeping).
struct GossipMix {
    rounds_left: usize,
    acc: u64,
}

#[inline]
fn mix(mut z: u64) -> u64 {
    for _ in 0..4 {
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^= z >> 31;
    }
    z
}

impl NodeProgram for GossipMix {
    fn round(&mut self, ctx: &mut NodeCtx<'_>, inbox: &Inbox<'_>) {
        for (from, m) in inbox {
            for &w in m.words() {
                self.acc = self.acc.wrapping_add(mix(w ^ from as u64));
            }
        }
        if self.rounds_left > 0 {
            self.rounds_left -= 1;
            let word: u64 = ctx.rng().gen();
            ctx.broadcast(Message::from_words([word]));
        }
    }
    fn is_done(&self) -> bool {
        self.rounds_left == 0
    }
}

fn run_gossip(g: &Graph, engine: EngineKind) -> (u64, decomp_congest::RunStats) {
    let mut sim = Simulator::with_seed(g, Model::VCongest, 42).with_engine(engine);
    let programs = (0..g.n())
        .map(|_| GossipMix {
            rounds_left: GOSSIP_ROUNDS,
            acc: 0,
        })
        .collect();
    let (programs, stats) = sim.run_to_quiescence(programs).unwrap();
    let digest = programs.iter().fold(0u64, |a, p| a.wrapping_add(p.acc));
    (digest, stats)
}

fn engines() -> [EngineKind; 4] {
    [
        EngineKind::Sequential,
        EngineKind::sharded(2),
        EngineKind::sharded(4),
        EngineKind::sharded_topo(4),
    ]
}

fn bench_round_loop(c: &mut Criterion) {
    let g = generators::random_regular(N, DEGREE, 1);

    // Engine equivalence on the bench workload itself: identical digests
    // AND identical stats (peak-memory counters included; the locality
    // split is the one partition-dependent pair, printed instead).
    let expected = run_gossip(&g, EngineKind::Sequential);
    for engine in engines().into_iter().skip(1) {
        let got = run_gossip(&g, engine);
        assert_eq!(
            (got.0, got.1.locality_blind()),
            (expected.0, expected.1.locality_blind()),
            "engine {engine} diverged"
        );
        // The partitioner's cut, measured on the real workload: the
        // fraction of delivered words that crossed a shard boundary.
        println!(
            "gossip16_rr10k_d8 locality[{engine}]: local_words={} cross_shard_words={} ({:.1}% cross)",
            got.1.local_words,
            got.1.cross_shard_words,
            100.0 * got.1.cross_shard_words as f64 / got.1.words.max(1) as f64
        );
    }
    // Memory footprint alongside the wall-clock columns (BENCH_SIM.md):
    // the arena holds each broadcast payload once, so peak_arena_words ≈
    // sending nodes per round, while peak_queued_messages counts one per
    // delivery (the old per-delivery `Vec<u64>` clone count).
    let stats = expected.1;
    println!(
        "gossip16_rr10k_d8 memory: peak_queued_messages={} peak_arena_words={}",
        stats.peak_queued_messages, stats.peak_arena_words
    );

    let mut group = c.benchmark_group("sim_round_loop");
    group.sample_size(5);
    for engine in engines() {
        group.bench_with_input(
            BenchmarkId::new("gossip16_rr10k_d8", engine),
            &engine,
            |b, &engine| b.iter(|| run_gossip(&g, engine)),
        );
    }
    for engine in engines() {
        group.bench_with_input(
            BenchmarkId::new("bfs_rr10k_d8", engine),
            &engine,
            |b, &engine| {
                b.iter(|| {
                    let mut sim = Simulator::new(&g, Model::VCongest).with_engine(engine);
                    distributed_bfs(&mut sim, 0).unwrap().depth()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_round_loop);
criterion_main!(benches);
