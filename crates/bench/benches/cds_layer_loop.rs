//! Criterion bench: the centralized CDS-packing layer loop at scale.
//!
//! This is the measurement harness for the ROADMAP's "perf sweep of
//! `cds::centralized`" item: `cds_packing` swept over Harary and
//! random-regular instances at n ∈ {10³, 10⁴, 10⁵}. The layer loop
//! dominates the runtime (jump start and projection are linear scans),
//! so the whole-construction wall clock tracks the loop itself.
//!
//! Track results in `BENCH_CDS.md` at the workspace root; the incremental
//! `ClassState` rewrite is validated bit-identical elsewhere (golden
//! registry + `distributed_vs_centralized`), so numbers here compare
//! wall-clock only.
//!
//! `CDS_BENCH_MAX_N` (optional) caps the swept instance size, e.g.
//! `CDS_BENCH_MAX_N=10000` for a quick local run.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use decomp_core::cds::centralized::{cds_packing, CdsPackingConfig};
use decomp_graph::{generators, Graph};

const SEED: u64 = 5;

fn max_n() -> usize {
    std::env::var("CDS_BENCH_MAX_N")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(usize::MAX)
}

/// Samples per instance size: large instances get fewer (medians of a
/// handful are stable — the construction is deterministic per seed).
fn samples_for(n: usize) -> usize {
    match n {
        0..=1_000 => 10,
        1_001..=10_000 => 5,
        _ => 2,
    }
}

fn bench_family(c: &mut Criterion, family: &str, k: usize, instances: &[(usize, Graph)]) {
    let mut group = c.benchmark_group("cds_layer_loop");
    for (n, g) in instances {
        group.sample_size(samples_for(*n));
        group.bench_with_input(
            BenchmarkId::new(family, format!("n{n}_k{k}_m{}", g.m())),
            g,
            |b, g| {
                b.iter(|| cds_packing(g, &CdsPackingConfig::with_known_k(k, SEED)));
            },
        );
    }
    group.finish();
}

fn bench_harary(c: &mut Criterion) {
    let k = 16;
    let instances: Vec<(usize, Graph)> = [1_000usize, 10_000, 100_000]
        .into_iter()
        .filter(|&n| n <= max_n())
        .map(|n| (n, generators::harary(k, n)))
        .collect();
    bench_family(c, "harary", k, &instances);
}

fn bench_random_regular(c: &mut Criterion) {
    let d = 16;
    let instances: Vec<(usize, Graph)> = [1_000usize, 10_000, 100_000]
        .into_iter()
        .filter(|&n| n <= max_n())
        .map(|n| (n, generators::random_regular(n, d, SEED)))
        .collect();
    // Random d-regular graphs are d-connected w.h.p.; the config treats
    // d as the connectivity estimate (t = d/4 classes).
    bench_family(c, "random_regular", d, &instances);
}

/// Worker scaling of the farmed per-class steps (2a–2b). Many classes
/// relative to the connectivity (`t = 24 ≫ k/4`) keeps classes
/// fragmented after the jump start, so the parallel half genuinely
/// runs; outputs are bit-identical for every worker count
/// (`examples/cds_digest.rs` is the oracle), so this compares
/// wall-clock only. Track per-core curves in `BENCH_SIM.md`.
fn bench_workers(c: &mut Criterion) {
    let (k, t) = (6, 24);
    let n = 20_000.min(max_n());
    let g = generators::harary(k, n);
    let mut group = c.benchmark_group("cds_layer_loop");
    group.sample_size(5);
    for workers in [1usize, 2, 4, 8] {
        group.bench_with_input(
            BenchmarkId::new("fragmented_harary", format!("n{n}_k{k}_t{t}_w{workers}")),
            &workers,
            |b, &workers| {
                let cfg = CdsPackingConfig::with_classes(t, SEED).with_workers(workers);
                b.iter(|| cds_packing(&g, &cfg));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_harary, bench_random_regular, bench_workers);
criterion_main!(benches);
