//! Criterion bench: the MWU spanning-tree packing (Section 5.1) and the
//! integral variant, swept over connectivity.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use decomp_core::stp::integral::integral_stp;
use decomp_core::stp::mwu::{fractional_stp_mwu, MwuConfig};
use decomp_graph::generators;

fn bench_mwu(c: &mut Criterion) {
    let mut group = c.benchmark_group("stp_mwu");
    group.sample_size(10);
    for &(k, n) in &[(4usize, 24usize), (6, 24), (8, 32)] {
        let g = generators::harary(k, n);
        group.bench_with_input(
            BenchmarkId::new("harary", format!("n{n}_lambda{k}")),
            &g,
            |b, g| {
                b.iter(|| fractional_stp_mwu(g, k, &MwuConfig::default()));
            },
        );
    }
    group.finish();
}

fn bench_integral(c: &mut Criterion) {
    let g = generators::complete(48);
    c.bench_function("stp_integral_k48", |b| {
        b.iter(|| integral_stp(&g, 47, 2.0, 7));
    });
}

criterion_group!(benches, bench_mwu, bench_integral);
criterion_main!(benches);
