//! Criterion bench: centralized CDS packing runtime (Theorem 1.2's
//! `O~(m)`), swept over instance size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use decomp_core::cds::centralized::{cds_packing, CdsPackingConfig};
use decomp_graph::generators;

fn bench_cds(c: &mut Criterion) {
    let mut group = c.benchmark_group("cds_packing_centralized");
    group.sample_size(10);
    for &(n, k) in &[(64usize, 16usize), (128, 24), (256, 32)] {
        let g = generators::harary(k, n);
        group.bench_with_input(
            BenchmarkId::new("harary", format!("n{n}_k{k}_m{}", g.m())),
            &g,
            |b, g| {
                b.iter(|| cds_packing(g, &CdsPackingConfig::with_known_k(k, 5)));
            },
        );
    }
    group.finish();
}

fn bench_verify(c: &mut Criterion) {
    let g = generators::harary(16, 128);
    let p = cds_packing(&g, &CdsPackingConfig::with_known_k(16, 1));
    c.bench_function("cds_verify_centralized", |b| {
        b.iter(|| decomp_core::cds::verify::verify_centralized(&g, &p.classes));
    });
}

criterion_group!(benches, bench_cds, bench_verify);
criterion_main!(benches);
