//! Criterion bench: the Appendix-A gossip schedule at scale.
//!
//! All-node gossip (one message per node) on random-regular and Harary
//! instances at n = 10⁴, plus a one-shot n = 10⁵ completion check — the
//! workload the bitset/worklist rewrite of `broadcast::gossip` exists
//! for. Two packing regimes per family:
//!
//! * **CDS-constructed** — `cds_packing` → `to_dom_tree_packing`, the
//!   paper's construction (classes overlap heavily at these scales, so
//!   this is the member-dense stress case);
//! * **disjoint ring paths** (Harary only) — `k/2` vertex-disjoint
//!   dominating paths (stride-`k/2` residue classes of the circulant),
//!   the Corollary 1.4 / A.1 regime of genuinely disjoint trees.
//!
//! Alongside wall-clock the harness prints the schedule's
//! `peak_state_words` (packed bitsets + relay heaps; the pre-rewrite
//! implementation held `2 · nmsg · n` bytes of `Vec<Vec<bool>>` tables)
//! and, for the simulator-driven protocol variant, the engine's
//! `RunStats` peak-memory counters (`peak_queued_messages`,
//! `peak_arena_words`). Track results in `BENCH_SIM.md`.
//!
//! A full run takes ~15 minutes on the CI container — the n = 10⁵
//! completion check dominates (it exists to prove the workload fits in
//! memory at all; the old tables needed ~20 GB and an `O(nmsg · n)`
//! scan per round).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use decomp_broadcast::gossip::{gossip_via_trees_with, GossipConfig, GossipReport};
use decomp_broadcast::gossip_distributed::gossip_protocol_on;
use decomp_congest::{EngineKind, Model, Simulator};
use decomp_core::cds::centralized::{cds_packing, CdsPackingConfig};
use decomp_core::cds::tree_extract::to_dom_tree_packing;
use decomp_core::packing::{DomTreePacking, WeightedDomTree};
use decomp_graph::{generators, Graph};
use std::time::Instant;

const DEGREE: usize = 16;

fn cds_derived_packing(g: &Graph, k: usize, seed: u64) -> DomTreePacking {
    let p = cds_packing(g, &CdsPackingConfig::with_known_k(k, seed));
    let ex = to_dom_tree_packing(g, &p);
    assert!(ex.invalid_classes.is_empty(), "CDS classes must extract");
    ex.packing
        .validate(g, 1e-9)
        .expect("extracted packing must be feasible");
    ex.packing
}

/// `k/2` vertex-disjoint dominating paths on `harary(k, n)`: path `j`
/// visits the vertices `≡ j (mod k/2)` in ring order (consecutive
/// members differ by `k/2`, an edge of the circulant; every vertex is
/// within `k/4 ≤ k/2` ring positions of each residue class, so each
/// path dominates). This is the disjoint-tree regime of Corollary 1.4.
/// Weights come from the same `1/max-multiplicity` rule
/// `to_dom_tree_packing` applies (here 1.0 — the paths are disjoint),
/// so the hand-built packing is a feasible fractional packing, not just
/// a tree list with placeholder weights.
fn disjoint_ring_paths(g: &Graph, k: usize) -> DomTreePacking {
    let n = g.n();
    let stride = k / 2;
    assert!(n.is_multiple_of(stride), "n must be a multiple of k/2");
    let trees = (0..stride)
        .map(|j| WeightedDomTree {
            id: j,
            weight: 1.0,
            edges: (0..n / stride - 1)
                .map(|i| (j + stride * i, j + stride * (i + 1)))
                .collect(),
            singleton: None,
        })
        .collect();
    let mut packing = DomTreePacking { trees };
    packing.assign_uniform_feasible_weights(n);
    packing.validate(g, 1e-9).unwrap();
    packing
}

fn all_node_gossip_with(
    g: &Graph,
    packing: &DomTreePacking,
    seed: u64,
    config: GossipConfig,
) -> GossipReport {
    let origins: Vec<usize> = (0..g.n()).collect();
    let r = gossip_via_trees_with(g, packing, &origins, seed, config);
    assert_eq!(r.num_messages, g.n());
    r
}

fn all_node_gossip(g: &Graph, packing: &DomTreePacking, seed: u64) -> GossipReport {
    all_node_gossip_with(g, packing, seed, GossipConfig::default())
}

fn report_memory(label: &str, n: usize, r: &GossipReport) {
    // The pre-bitset implementation: received + relayed Vec<Vec<bool>>.
    let old_table_words = 2 * r.num_messages * n / 8;
    println!(
        "{label}: rounds={} peak_state_words={} (old bool tables ≈ {} words, {:.1}×)",
        r.rounds,
        r.peak_state_words,
        old_table_words,
        old_table_words as f64 / r.peak_state_words as f64
    );
}

fn bench_gossip_scale(c: &mut Criterion) {
    // One-shot scale check first: all-node gossip at n = 10⁵ must
    // complete in-memory (the old O(nmsg · n) tables would need ~20 GB
    // and a per-round full scan; see BENCH_SIM.md).
    {
        let n = 100_000;
        let g = generators::harary(DEGREE, n);
        let packing = disjoint_ring_paths(&g, DEGREE);
        let t0 = Instant::now();
        let r = all_node_gossip(&g, &packing, 7);
        println!(
            "scale_check harary_k16_n100k/disjoint8: {:.1}s wall-clock",
            t0.elapsed().as_secs_f64()
        );
        report_memory("scale_check harary_k16_n100k/disjoint8", n, &r);
    }

    let n = 10_000;
    let harary = generators::harary(DEGREE, n);
    let rr = generators::random_regular(n, DEGREE, 1);
    let harary_cds = cds_derived_packing(&harary, DEGREE, 5);
    let rr_cds = cds_derived_packing(&rr, DEGREE, 5);
    let harary_disjoint = disjoint_ring_paths(&harary, DEGREE);

    // Memory numbers once per workload (deterministic per seed, so the
    // timed iterations below reproduce them exactly).
    let harary_cds_uniform = all_node_gossip(&harary, &harary_cds, 7);
    let rr_cds_uniform = all_node_gossip(&rr, &rr_cds, 7);
    report_memory("harary_k16_n10k/cds", n, &harary_cds_uniform);
    report_memory("rr_n10k_d16/cds", n, &rr_cds_uniform);
    report_memory(
        "harary_k16_n10k/disjoint8",
        n,
        &all_node_gossip(&harary, &harary_disjoint, 7),
    );

    // Weighted-vs-uniform on the CDS-constructed packings at small k —
    // the fractional regime of Theorem 1.1: trees overlap in almost
    // every vertex, so the weighted credit scheduler time-shares relay
    // slots instead of serving the globally lowest-indexed message.
    // Track the round counts in BENCH_SIM.md.
    for (label, g, packing, uniform) in [
        (
            "harary_k16_n10k/cds",
            &harary,
            &harary_cds,
            &harary_cds_uniform,
        ),
        ("rr_n10k_d16/cds", &rr, &rr_cds, &rr_cds_uniform),
    ] {
        let weighted = all_node_gossip_with(g, packing, 7, GossipConfig::weighted());
        println!(
            "{label}: uniform/greedy rounds={} vs weighted rounds={} \
             (peak_state_words {} vs {})",
            uniform.rounds, weighted.rounds, uniform.peak_state_words, weighted.peak_state_words
        );
        // The coded regime on the random-regular workload: no tree
        // commitment at all — relays broadcast random GF(2⁸)
        // combinations per generation. `wasted_bandwidth` counts
        // non-innovative deliveries, the redundancy price coding pays
        // for never convoying behind a committed tree. Skipped on the
        // harary circulant: its poor expansion makes uniform-generation
        // coded relaying mix far too slowly at this scale (each relay
        // splits one broadcast across ~625 live generations, so per-
        // generation frontiers crawl the ring) — see BENCH_SIM.md PR 8.
        if label.starts_with("rr_") {
            let rlnc = all_node_gossip_with(g, packing, 7, GossipConfig::rlnc(16, 7));
            println!(
                "{label}: rlnc(g=16) rounds={} wasted_bandwidth={} peak_state_words={}",
                rlnc.rounds, rlnc.wasted_bandwidth, rlnc.peak_state_words
            );
        }
    }

    let mut group = c.benchmark_group("gossip_scale");
    group.sample_size(2);
    for (label, g, packing, config) in [
        (
            "harary_k16_n10k/cds",
            &harary,
            &harary_cds,
            GossipConfig::default(),
        ),
        (
            "harary_k16_n10k/cds/weighted",
            &harary,
            &harary_cds,
            GossipConfig::weighted(),
        ),
        ("rr_n10k_d16/cds", &rr, &rr_cds, GossipConfig::default()),
        (
            "rr_n10k_d16/cds/weighted",
            &rr,
            &rr_cds,
            GossipConfig::weighted(),
        ),
        (
            "rr_n10k_d16/cds/rlnc",
            &rr,
            &rr_cds,
            GossipConfig::rlnc(16, 7),
        ),
        (
            "harary_k16_n10k/disjoint8",
            &harary,
            &harary_disjoint,
            GossipConfig::default(),
        ),
    ] {
        group.bench_with_input(
            BenchmarkId::new("all_node", label),
            &(g, packing),
            |b, (g, packing)| b.iter(|| all_node_gossip_with(g, packing, 7, config).rounds),
        );
    }
    group.finish();

    // The same dissemination as a real V-CONGEST protocol on the
    // simulator, swept across engines: prints the peak-memory counters
    // (the inbox arena is the structure the zero-allocation message
    // plane added) and the locality split (`local_words` /
    // `cross_shard_words` — the partitioner's cut measured on delivered
    // protocol traffic; sequential reports all-local by definition).
    // One message per 8th node keeps this a side-check, not a second
    // multi-minute workload.
    let origins: Vec<usize> = (0..n).step_by(8).collect();
    for engine in [
        EngineKind::Sequential,
        EngineKind::sharded(4),
        EngineKind::sharded_topo(4),
    ] {
        let mut sim = Simulator::with_seed(&harary, Model::VCongest, 7).with_engine(engine);
        let t0 = Instant::now();
        let protocol = gossip_protocol_on(
            &mut sim,
            &harary_disjoint,
            &origins,
            7,
            GossipConfig::default(),
        )
        .expect("protocol completes");
        assert!(protocol.complete);
        println!(
            "protocol harary_k16_n10k/disjoint8 (n/8 msgs) [{engine}]: {:.1}s wall-clock \
             rounds={} peak_queued_messages={} peak_arena_words={} \
             local_words={} cross_shard_words={} ({:.1}% cross)",
            t0.elapsed().as_secs_f64(),
            protocol.stats.rounds,
            protocol.stats.peak_queued_messages,
            protocol.stats.peak_arena_words,
            protocol.stats.local_words,
            protocol.stats.cross_shard_words,
            100.0 * protocol.stats.cross_shard_words as f64 / protocol.stats.words.max(1) as f64,
        );
    }
}

criterion_group!(benches, bench_gossip_scale);
criterion_main!(benches);
