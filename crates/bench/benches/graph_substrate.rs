//! Criterion bench: substrate algorithms (exact connectivity, MST, BFS,
//! distributed primitives) — the per-invocation costs every higher-level
//! experiment pays.

use criterion::{criterion_group, criterion_main, Criterion};
use decomp_congest::{Model, Simulator};
use decomp_graph::{connectivity, generators, mst, traversal};

fn bench_substrate(c: &mut Criterion) {
    let g = generators::harary(8, 128);
    c.bench_function("vertex_connectivity_harary8_128", |b| {
        b.iter(|| connectivity::vertex_connectivity(&g));
    });
    c.bench_function("edge_connectivity_harary8_128", |b| {
        b.iter(|| connectivity::edge_connectivity(&g));
    });
    c.bench_function("mst_kruskal_harary8_128", |b| {
        b.iter(|| mst::minimum_spanning_forest(&g, |e| e as f64));
    });
    c.bench_function("bfs_harary8_128", |b| {
        b.iter(|| traversal::bfs(&g, 0));
    });
}

fn bench_congest(c: &mut Criterion) {
    let g = generators::harary(8, 64);
    c.bench_function("distributed_bfs_harary8_64", |b| {
        b.iter(|| {
            let mut sim = Simulator::new(&g, Model::VCongest);
            decomp_congest::bfs::distributed_bfs(&mut sim, 0).unwrap()
        });
    });
    c.bench_function("distributed_mst_harary8_64", |b| {
        b.iter(|| {
            let mut sim = Simulator::new(&g, Model::VCongest);
            let w: Vec<u64> = (0..g.m() as u64).collect();
            decomp_congest::mst::distributed_mst(&mut sim, &w).unwrap()
        });
    });
}

criterion_group!(benches, bench_substrate, bench_congest);
criterion_main!(benches);
