//! Reproduces Figure 3: the lower-bound construction `H(X,Y)` /
//! `G(X,Y)` of Appendix G, printed as DOT (pipe into graphviz to render)
//! together with its verified cut structure.
//!
//! Run with `cargo run --release --example figure_lowerbound`.

use connectivity_decomposition::graph::connectivity::vertex_connectivity;
use connectivity_decomposition::lowerbound::construction::{build_g, build_h, LbParams};
use std::collections::BTreeSet;

fn main() {
    // Figure 3's proportions: h = ℓ = 6 in the paper; a small readable
    // instance here.
    let params = LbParams { h: 4, ell: 2, w: 4 };
    let x: BTreeSet<usize> = [2, 3].into();
    let y: BTreeSet<usize> = [1, 3].into(); // intersection {3}

    let h_inst = build_h(&params, &x, &y);
    println!("// H(X,Y): weighted instance, X = {x:?}, Y = {y:?}");
    println!("// node weights: {:?}", h_inst.weights);
    println!("{}", h_inst.graph.to_dot("H_XY"));

    let g_inst = build_g(&params, &x, &y);
    let k = vertex_connectivity(&g_inst.graph);
    println!("// G(X,Y): unweighted blow-up, n = {}", g_inst.graph.n());
    println!("// vertex connectivity = {k} (Lemma G.4: exactly 4 since X ∩ Y = {{3}})");
    let cut = g_inst.canonical_cut().expect("intersecting instance");
    println!("// canonical minimum cut {{a, b, u_3, v_3}} = vertices {cut:?}");

    let disjoint = build_g(&params, &[2usize, 4].into(), &[1usize, 3].into());
    println!(
        "// disjoint instance: vertex connectivity = {} (Lemma G.4: >= w = {})",
        vertex_connectivity(&disjoint.graph),
        params.w,
    );
}
