//! Quickstart: decompose a well-connected graph into dominating trees and
//! spanning trees, verify the packings, and print the headline numbers.
//!
//! Run with `cargo run --release --example quickstart`.

use connectivity_decomposition::core::cds::centralized::{cds_packing, CdsPackingConfig};
use connectivity_decomposition::core::cds::tree_extract::to_dom_tree_packing;
use connectivity_decomposition::core::cds::verify::{verify_centralized, VerifyOutcome};
use connectivity_decomposition::core::stp::mwu::{fractional_stp_mwu, MwuConfig};
use connectivity_decomposition::graph::{connectivity, generators};

fn main() {
    // A Harary graph: exactly 16-vertex-connected and 16-edge-connected.
    let g = generators::harary(16, 96);
    let k = connectivity::vertex_connectivity(&g);
    let lambda = connectivity::edge_connectivity(&g);
    println!(
        "graph: n = {}, m = {}, k = {k}, lambda = {lambda}",
        g.n(),
        g.m()
    );

    // --- Vertex-connectivity decomposition (Theorem 1.2). ----------------
    let packing = cds_packing(&g, &CdsPackingConfig::with_known_k(k, 42));
    assert_eq!(
        verify_centralized(&g, &packing.classes),
        VerifyOutcome::Pass
    );
    let trees = to_dom_tree_packing(&g, &packing);
    trees
        .packing
        .validate(&g, 1e-9)
        .expect("packing must be feasible");
    println!(
        "dominating-tree packing: {} trees, each node in <= {} trees, fractional size {:.3}",
        trees.packing.num_trees(),
        trees.packing.max_vertex_multiplicity(g.n()),
        trees.packing.size(),
    );

    // --- Edge-connectivity decomposition (Theorem 1.3). ------------------
    let report = fractional_stp_mwu(&g, lambda, &MwuConfig::default());
    report
        .packing
        .validate(&g, 1e-9)
        .expect("packing must be feasible");
    let target = ((lambda as f64 - 1.0) / 2.0).ceil();
    println!(
        "spanning-tree packing: size {:.3} of Tutte–Nash-Williams target {target} \
         ({} distinct trees, max edge load {:.3})",
        report.packing.size(),
        report.packing.num_trees(),
        report
            .packing
            .edge_loads(&g)
            .into_iter()
            .fold(0.0, f64::max),
    );
}
