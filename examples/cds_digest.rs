//! Prints an FNV digest of `cds_packing` outputs on a fixed instance
//! roster — the bit-identity reference for perf work on the layer loop.

use decomp_core::cds::centralized::{cds_packing, CdsPackingConfig};
use decomp_graph::generators;

fn digest(p: &decomp_core::cds::centralized::CdsPacking) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    let mut eat = |x: u64| {
        h ^= x;
        h = h.wrapping_mul(0x100000001b3);
    };
    for c in &p.class_of {
        eat(c.map(|v| v as u64 + 1).unwrap_or(0));
    }
    for (i, class) in p.classes.iter().enumerate() {
        eat(i as u64 ^ 0xdead);
        for &v in class {
            eat(v as u64);
        }
    }
    for t in &p.trace {
        eat(t.excess_before as u64);
        eat(t.excess_after as u64);
        eat(t.matched as u64);
        eat(t.deactivated as u64);
    }
    h
}

fn main() {
    // (name, graph, explicit class count t). Large t relative to the
    // connectivity leaves classes fragmented after the jump start, so the
    // deactivation/bridging/matching machinery genuinely runs.
    let cases: Vec<(String, decomp_graph::Graph, usize)> = vec![
        (
            "harary_k16_n1000_t4".into(),
            generators::harary(16, 1000),
            4,
        ),
        (
            "rr_n1000_d16_t4".into(),
            generators::random_regular(1000, 16, 5),
            4,
        ),
        (
            "harary_k6_n2000_t24".into(),
            generators::harary(6, 2000),
            24,
        ),
        (
            "rr_n1500_d8_t16".into(),
            generators::random_regular(1500, 8, 5),
            16,
        ),
        ("hypercube_d9_t8".into(), generators::hypercube(9), 8),
        (
            "gnm_n500_m4000_t12".into(),
            generators::gnm(500, 4000, 7),
            12,
        ),
    ];
    for (name, g, t) in cases {
        for seed in [1u64, 5, 42] {
            let p = cds_packing(&g, &CdsPackingConfig::with_classes(t, seed));
            let matched: usize = p.trace.iter().map(|l| l.matched).sum();
            let deact: usize = p.trace.iter().map(|l| l.deactivated).sum();
            let excess0 = p.trace.first().map(|l| l.excess_before).unwrap_or(0);
            println!(
                "{name}/s{seed}: {:#018x} (excess0 {excess0}, matched {matched}, deactivated {deact})",
                digest(&p)
            );
        }
    }
}
