//! Scenario: all-to-all state dissemination in a redundant fabric.
//!
//! A "thick path" models a row of racks: each rack is a clique of `k`
//! switches, consecutive racks are fully cross-wired, so the fabric is
//! exactly `k`-vertex-connected but has large diameter — the regime where
//! a single spanning tree bottlenecks and the dominating-tree packing
//! parallelizes dissemination (Appendix A).
//!
//! Run with `cargo run --release --example gossip_datacenter`.

use connectivity_decomposition::broadcast::gossip::{
    gossip_single_tree_baseline, gossip_via_trees,
};
use connectivity_decomposition::core::cds::centralized::{cds_packing, CdsPackingConfig};
use connectivity_decomposition::core::cds::tree_extract::to_dom_tree_packing;
use connectivity_decomposition::graph::{connectivity, generators, traversal};

fn main() {
    let k = 8;
    let racks = 10;
    let g = generators::thick_path(k, racks);
    let n = g.n();
    println!(
        "fabric: {racks} racks x {k} switches = {n} nodes, m = {}, k = {}, diameter = {}",
        g.m(),
        connectivity::vertex_connectivity(&g),
        traversal::diameter(&g).unwrap(),
    );

    // Build the decomposition and extract the trees.
    let packing = cds_packing(&g, &CdsPackingConfig::with_known_k(k, 7));
    let trees = to_dom_tree_packing(&g, &packing);
    println!(
        "decomposition: {} dominating trees (invalid classes: {})",
        trees.packing.num_trees(),
        trees.invalid_classes.len(),
    );

    // Every switch announces its state to everyone (classical gossiping).
    let origins: Vec<usize> = (0..n).collect();
    let multi = gossip_via_trees(&g, &trees.packing, &origins, 3);
    let single = gossip_single_tree_baseline(&g, &origins, 3);
    println!(
        "gossip of {n} messages: {} rounds via the packing vs {} rounds via one BFS tree",
        multi.rounds, single.rounds,
    );
    println!(
        "per-tree load: {:?}, largest tree diameter: {}",
        multi.per_tree_load, multi.max_tree_diameter,
    );
}
