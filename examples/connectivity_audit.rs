//! Scenario: auditing the resilience of unknown topologies.
//!
//! Corollary 1.7 turns the decomposition into an `O(log n)`-approximation
//! of vertex connectivity that runs in near-linear time — here we audit a
//! portfolio of topologies, comparing the certified packing size `κ`
//! (always a lower bound on `k`) against the exact value from the max-flow
//! oracle, centrally and in the V-CONGEST simulator.
//!
//! Run with `cargo run --release --example connectivity_audit`.

use connectivity_decomposition::congest::{Model, Simulator};
use connectivity_decomposition::core::connectivity_approx::{
    approx_vertex_connectivity, approx_vertex_connectivity_distributed,
};
use connectivity_decomposition::graph::{connectivity, generators, Graph};

fn main() {
    let portfolio: Vec<(&str, Graph)> = vec![
        ("ring of cliques", generators::thick_path(6, 6)),
        ("hypercube Q5", generators::hypercube(5)),
        ("harary H_{12,60}", generators::harary(12, 60)),
        ("barbell (single bridge)", generators::barbell(10, 3)),
        ("random 10-regular", generators::random_regular(64, 10, 9)),
        ("clique + triples", generators::clique_plus_triples(6)),
    ];
    println!(
        "{:<26} {:>7} {:>9} {:>9} {:>12}",
        "topology", "true k", "kappa", "estimate", "dist rounds"
    );
    for (name, g) in portfolio {
        let true_k = connectivity::vertex_connectivity(&g);
        let approx = approx_vertex_connectivity(&g, 11);
        let mut sim = Simulator::new(&g, Model::VCongest);
        let dist = approx_vertex_connectivity_distributed(&mut sim, 11).expect("simulation");
        assert!(
            approx.packing_size <= true_k as f64 + 1e-9,
            "certificate must lower-bound k"
        );
        assert!(dist.packing_size <= true_k as f64 + 1e-9);
        println!(
            "{:<26} {:>7} {:>9.3} {:>9} {:>12}",
            name,
            true_k,
            approx.packing_size,
            approx.estimate(),
            sim.stats().rounds,
        );
    }
}
