//! Scenario: oblivious broadcast routing in a wireless sensor mesh.
//!
//! A random geometric graph models a dense sensor deployment. Messages
//! must be broadcast without any load coordination (oblivious routing,
//! Corollary 1.6): each message independently picks a random tree of the
//! decomposition, and the resulting congestion stays competitive with the
//! offline optimum — `O(log n)` for vertex congestion, `O(1)` for edge
//! congestion.
//!
//! Run with `cargo run --release --example oblivious_sensor_mesh`.

use connectivity_decomposition::broadcast::oblivious::{edge_congestion, vertex_congestion};
use connectivity_decomposition::core::cds::centralized::{cds_packing, CdsPackingConfig};
use connectivity_decomposition::core::cds::tree_extract::to_dom_tree_packing;
use connectivity_decomposition::core::stp::mwu::{fractional_stp_mwu, MwuConfig};
use connectivity_decomposition::graph::{connectivity, generators, traversal};

fn main() {
    // Dense deployment: 80 sensors, radio radius 0.35.
    let g = generators::random_geometric(80, 0.35, 2026);
    assert!(traversal::is_connected(&g), "deployment must be connected");
    let k = connectivity::vertex_connectivity(&g);
    let lambda = connectivity::edge_connectivity(&g);
    println!(
        "sensor mesh: n = {}, m = {}, k = {k}, lambda = {lambda}, diameter = {}",
        g.n(),
        g.m(),
        traversal::diameter(&g).unwrap()
    );

    let workload = 4000;

    // Vertex-congestion side (V-CONGEST, dominating trees).
    let packing = cds_packing(&g, &CdsPackingConfig::with_known_k(k, 5));
    let trees = to_dom_tree_packing(&g, &packing);
    let vc = vertex_congestion(&g, &trees.packing, k, workload, 11);
    println!(
        "oblivious vertex congestion: max {} vs OPT >= {:.1} -> {:.2}-competitive (log n = {:.1})",
        vc.max_congestion,
        vc.opt_lower_bound,
        vc.competitiveness,
        (g.n() as f64).log2()
    );

    // Edge-congestion side (E-CONGEST, spanning trees).
    let stp = fractional_stp_mwu(&g, lambda, &MwuConfig::default());
    let ec = edge_congestion(&g, &stp.packing, lambda, workload, 13);
    println!(
        "oblivious edge congestion:   max {} vs OPT >= {:.1} -> {:.2}-competitive (target O(1))",
        ec.max_congestion, ec.opt_lower_bound, ec.competitiveness
    );
}
