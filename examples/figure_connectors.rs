//! Reproduces Figure 2: connector paths for a component of a dominating
//! class (Section 4.1) — prints the component split, the enumerated
//! connector paths with their types, and the flow-certified disjoint count
//! (Lemma 4.3).
//!
//! Run with `cargo run --release --example figure_connectors`.

use connectivity_decomposition::core::cds::connector::{
    enumerate_connectors, max_disjoint_connectors, ProjectionView,
};
use connectivity_decomposition::graph::{domination, generators};

fn main() {
    // H_{6,36} with a dominating class split into two arcs (the instance
    // from the Lemma 4.3 test): components C1 = {0..11}, C2 = {18..29}.
    let k = 6;
    let g = generators::harary(k, 36);
    let comp_of: Vec<Option<usize>> = (0..36)
        .map(|v| match v {
            0..=11 => Some(0),
            18..=29 => Some(1),
            _ => None,
        })
        .collect();
    let mask: Vec<bool> = comp_of.iter().map(|c| c.is_some()).collect();
    assert!(domination::is_dominating_set(&g, &mask));
    println!("graph: H_{{6,36}}; class components C1 = 0..=11, C2 = 18..=29");

    let view = ProjectionView::new(&comp_of, 0);
    let paths = enumerate_connectors(&g, &view);
    println!("potential connector paths for C1 (conditions A–C):");
    for p in &paths {
        let kind = if p.len() == 3 { "short" } else { "long " };
        // Internal types per rules (D)/(E): short -> type 1; long -> the
        // node adjacent to C gets type 2, the other type 3.
        match p.len() {
            3 => println!("  {kind}: {} -[type1 {}]- {}", p[0], p[1], p[2]),
            4 => println!(
                "  {kind}: {} -[type2 {}]-[type3 {}]- {}",
                p[0], p[1], p[2], p[3]
            ),
            _ => unreachable!("connectors have 1 or 2 internals"),
        }
    }
    let disjoint = max_disjoint_connectors(&g, &view);
    println!("flow-certified internally vertex-disjoint connectors: {disjoint} (Lemma 4.3 bound: k = {k})");
    assert!(disjoint >= k);
}
