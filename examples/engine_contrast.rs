//! Engine contrast: the sharded round engine vs the naive
//! thread-per-node execution people reach for first.
//!
//! Both run the same workload — a few rounds of all-node neighborhood
//! gossip with per-word mixing on a 10⁴-node random-regular instance —
//! and produce the same digest. The contrast is *how* the rounds
//! execute:
//!
//! * the **simulator engines** step nodes in-place over per-shard
//!   contiguous state slabs, deliver same-shard messages without
//!   touching the mailbox plane, and reuse arena buffers across rounds;
//! * the **thread-per-node baseline** spawns one OS thread per active
//!   node per round (64 KiB stacks — the default 8 MiB would ask for
//!   80 GB of address space), ships every message through per-node
//!   outbox vectors, and joins all threads at the round barrier.
//!
//! The baseline is the distributed-algorithms textbook picture taken
//! literally ("every node is a processor"), and the point of the
//! numbers is that an engine built around memory layout beats it by
//! orders of magnitude at identical semantics — spawn/join alone costs
//! more than the sharded engine spends on the whole round.
//!
//! Run with `cargo run --release --example engine_contrast`.
//! Track results in `BENCH_SIM.md` ("PR 7").

use connectivity_decomposition::congest::{
    EngineKind, Inbox, Message, Model, NodeCtx, NodeProgram, Simulator,
};
use connectivity_decomposition::graph::generators;
use std::time::Instant;

const N: usize = 10_000;
const DEGREE: usize = 8;
const ROUNDS: usize = 4;

#[inline]
fn mix(mut z: u64) -> u64 {
    for _ in 0..4 {
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^= z >> 31;
    }
    z
}

/// The workload, engine-agnostically: fold the inbox into the
/// accumulator, then (while rounds remain) broadcast a deterministic
/// word derived from the node id and round. No RNG, so the simulator
/// engines and the hand-rolled baseline can be digest-compared.
#[inline]
fn step(v: usize, round: usize, acc: &mut u64, inbox: &[(usize, u64)]) -> Option<u64> {
    for &(from, w) in inbox {
        *acc = acc.wrapping_add(mix(w ^ from as u64));
    }
    (round < ROUNDS).then(|| mix((v as u64) << 32 | round as u64))
}

struct GossipMix {
    v: usize,
    round: usize,
    acc: u64,
}

impl NodeProgram for GossipMix {
    fn round(&mut self, ctx: &mut NodeCtx<'_>, inbox: &Inbox<'_>) {
        let flat: Vec<(usize, u64)> = inbox
            .into_iter()
            .flat_map(|(from, m)| m.words().iter().map(move |&w| (from, w)))
            .collect();
        if let Some(word) = step(self.v, self.round, &mut self.acc, &flat) {
            ctx.broadcast(Message::from_words([word]));
        }
        self.round += 1;
    }
    fn is_done(&self) -> bool {
        self.round > ROUNDS
    }
}

fn run_simulator(g: &connectivity_decomposition::graph::Graph, engine: EngineKind) -> (u64, f64) {
    let mut sim = Simulator::with_seed(g, Model::VCongest, 42).with_engine(engine);
    let programs = (0..g.n())
        .map(|v| GossipMix {
            v,
            round: 0,
            acc: 0,
        })
        .collect();
    let t0 = Instant::now();
    let (programs, _) = sim.run_to_quiescence(programs).unwrap();
    let wall = t0.elapsed().as_secs_f64();
    let digest = programs.iter().fold(0u64, |a, p| a.wrapping_add(p.acc));
    (digest, wall)
}

/// One OS thread per active node per round. Each thread owns its node's
/// state and inbox and returns `(new_acc, Option<broadcast word>)`;
/// the main thread plays message plane, fanning broadcasts out to
/// neighbor inboxes between rounds. Joins in node order, so the digest
/// is deterministic.
fn run_thread_per_node(g: &connectivity_decomposition::graph::Graph) -> (u64, f64) {
    let n = g.n();
    let t0 = Instant::now();
    let mut acc: Vec<u64> = vec![0; n];
    let mut inboxes: Vec<Vec<(usize, u64)>> = vec![Vec::new(); n];
    // Rounds 0..=ROUNDS: the final round only drains the last inboxes
    // (mirrors the simulator programs' quiescence).
    for round in 0..=ROUNDS {
        let handles: Vec<_> = (0..n)
            .map(|v| {
                let mut my_acc = acc[v];
                let my_inbox = std::mem::take(&mut inboxes[v]);
                std::thread::Builder::new()
                    .stack_size(64 * 1024)
                    .spawn(move || {
                        let out = step(v, round, &mut my_acc, &my_inbox);
                        (my_acc, out)
                    })
                    .expect("spawn node thread")
            })
            .collect();
        let mut sent: Vec<(usize, u64)> = Vec::new();
        for (v, h) in handles.into_iter().enumerate() {
            let (a, out) = h.join().expect("node thread");
            acc[v] = a;
            if let Some(w) = out {
                sent.push((v, w));
            }
        }
        for (v, w) in sent {
            for &u in g.neighbors(v) {
                inboxes[u].push((v, w));
            }
        }
        // Deliver sorted by sender, like the engines do.
        for inbox in inboxes.iter_mut() {
            inbox.sort_unstable_by_key(|&(from, _)| from);
        }
    }
    let wall = t0.elapsed().as_secs_f64();
    let digest = acc.iter().fold(0u64, |a, &x| a.wrapping_add(x));
    (digest, wall)
}

fn main() {
    let g = generators::random_regular(N, DEGREE, 1);
    println!("workload: {ROUNDS} rounds of all-node gossip+mix on random-regular n={N} d={DEGREE}");

    let (expect, seq_wall) = run_simulator(&g, EngineKind::Sequential);
    let mut rows: Vec<(String, u64, f64)> = vec![("simulator/sequential".into(), expect, seq_wall)];
    for engine in [EngineKind::sharded(4), EngineKind::sharded_topo(4)] {
        let (digest, wall) = run_simulator(&g, engine);
        rows.push((format!("simulator/{engine}"), digest, wall));
    }
    let (digest, wall) = run_thread_per_node(&g);
    rows.push(("thread-per-node baseline".into(), digest, wall));

    for (label, digest, wall) in &rows {
        assert_eq!(digest, &expect, "{label}: engines must agree on the digest");
        println!(
            "{label:<28} digest={digest:#018x}  wall={:>8.3}s  ({:>6.1}x baseline)",
            wall,
            rows.last().unwrap().2 / wall.max(1e-9),
        );
    }
}
